#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "cluster/cluster_manager.hpp"
#include "control/control_plane.hpp"
#include "core/compensation.hpp"
#include "fault/fault.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace pas::cluster {

namespace {

/// One platform class per host: the configured list verbatim, or
/// host_count clones synthesized from the template. The uniform scalars
/// are 0-defaulted ("unset"), so a scalar that was actually set alongside
/// a class list is detectable — and rejected — rather than silently losing
/// to it.
std::vector<platform::HostClass> resolve_classes(const ClusterConfig& cfg) {
  if (!cfg.host_classes.empty()) {
    if (cfg.host_count != 0 && cfg.host_count != cfg.host_classes.size())
      throw std::invalid_argument("Cluster: host_count contradicts host_classes");
    if (cfg.host_memory_mb != 0.0)
      throw std::invalid_argument(
          "Cluster: host_memory_mb contradicts host_classes; set memory per class");
    for (const auto& c : cfg.host_classes) {
      if (c.memory_mb <= 0.0)
        throw std::invalid_argument("Cluster: class memory must be positive");
      if (c.numa_nodes == 0)
        throw std::invalid_argument("Cluster: class needs at least one NUMA node");
      if (c.numa_spill_penalty < 0.0)
        throw std::invalid_argument("Cluster: negative NUMA spill penalty");
    }
    return cfg.host_classes;
  }
  if (cfg.host_count == 0)
    throw std::invalid_argument("Cluster: need at least one host (or host_classes)");
  if (cfg.host_memory_mb < 0.0)
    throw std::invalid_argument("Cluster: host memory must be positive");
  platform::HostClass c;
  c.name = "host";
  c.ladder = cfg.host.ladder;
  c.power = cfg.host.power;
  c.memory_mb = cfg.host_memory_mb == 0.0 ? 4096.0 : cfg.host_memory_mb;
  return std::vector<platform::HostClass>(cfg.host_count, c);
}

}  // namespace

RecoveryStats summarize_recoveries(const std::vector<VmRecovery>& recoveries) {
  RecoveryStats stats;
  stats.count = recoveries.size();
  if (recoveries.empty()) return stats;
  std::vector<common::SimTime> latencies;
  latencies.reserve(recoveries.size());
  double sum_s = 0.0;
  for (const VmRecovery& r : recoveries) {
    latencies.push_back(r.latency());
    sum_s += r.latency().sec();
  }
  std::sort(latencies.begin(), latencies.end());
  // Lower-median nearest rank: an integer-microsecond latency that really
  // occurred, never an interpolation — the value stays byte-stable however
  // the recoveries split across engines.
  stats.p50 = latencies[(latencies.size() - 1) / 2];
  stats.max = latencies.back();
  stats.mean_s = sum_s / static_cast<double>(recoveries.size());
  return stats;
}

Cluster::Cluster(ClusterConfig config)
    : cfg_(std::move(config)), classes_(resolve_classes(cfg_)), meter_(classes_.size()) {
  engine_ = std::make_unique<MigrationEngine>(cfg_.migration, events_);
  crashed_.assign(classes_.size(), 0);
  host_slots_.resize(classes_.size());

  const std::size_t executors = cfg_.execution.threads == 0
                                    ? common::ThreadPool::hardware_threads()
                                    : cfg_.execution.threads;
  if (executors > 1) pool_ = std::make_unique<common::ThreadPool>(executors);

  hosts_.reserve(classes_.size());
  agents_.reserve(classes_.size());
  for (std::size_t h = 0; h < classes_.size(); ++h) {
    auto scheduler = cfg_.make_scheduler ? cfg_.make_scheduler()
                                         : std::make_unique<sched::CreditScheduler>();
    // Each host is built from its class: the shared template supplies the
    // timing knobs, the class supplies the machine (ladder + power model).
    hv::HostConfig hc = cfg_.host;
    hc.ladder = classes_[h].ladder;
    hc.power = classes_[h].power;
    auto host = std::make_unique<hv::Host>(std::move(hc), std::move(scheduler));
    hv::VmConfig agent_cfg;
    agent_cfg.name = "hv-agent-" + std::to_string(h);
    agent_cfg.credit = cfg_.agent_credit;
    agent_cfg.priority = cfg_.agent_priority;
    auto agent = std::make_unique<HypervisorAgent>();
    agents_.push_back(agent.get());
    const common::VmId slot_id = host->add_vm(agent_cfg, std::move(agent));
    if (slot_id != 0) throw std::logic_error("Cluster: agent must hold slot 0");
    hosts_.push_back(std::move(host));
  }
}

Cluster::~Cluster() = default;

GlobalVmId Cluster::add_vm(ClusterVmConfig config, std::unique_ptr<wl::Workload> workload,
                           HostId home) {
  if (started_) throw std::logic_error("Cluster: add_vm after run started");
  if (home >= hosts_.size()) throw std::invalid_argument("Cluster: bad home host");
  if (workload == nullptr) throw std::invalid_argument("Cluster: workload required");
  if (config.memory_mb <= 0.0)
    throw std::invalid_argument("Cluster: VM memory must be positive");

  const auto gid = static_cast<GlobalVmId>(vm_cfgs_.size());
  // Lazy topology: the VM gets a slot on its home only; other hosts learn
  // about it if a migration or recovery ever lands it there.
  const common::VmId slot_id = hosts_[home]->add_vm(config.vm, std::move(workload));
  sla_.register_vm(gid, config.vm.credit);
  vm_cfgs_.push_back(std::move(config));
  home_.push_back(home);
  home_slot_.push_back(slot_id);
  vm_slots_.emplace_back();
  vm_state_.push_back(VmState::kRunning);
  held_wl_.emplace_back();
  held_since_.emplace_back();
  downtime_.emplace_back();
  migration_count_.push_back(0);
  fed_locked_.push_back(0);
  record_slot(home, gid, slot_id);
  ++topology_version_;
  return gid;
}

GlobalVmId Cluster::admit_inbound(ClusterVmConfig config, HostId home) {
  if (home >= hosts_.size()) throw std::invalid_argument("Cluster: bad home host");
  if (config.memory_mb <= 0.0)
    throw std::invalid_argument("Cluster: VM memory must be positive");
  if (crashed_[home])
    throw std::invalid_argument("Cluster: inbound destination host crashed");

  const auto gid = static_cast<GlobalVmId>(vm_cfgs_.size());
  // Mid-run registration rides the same between-segments Host::add_vm path
  // ensure_slot uses: the slot parks an IdleGuest until the federation
  // link's attach delivers the guest (workload + credit) into it.
  const common::VmId slot_id =
      hosts_[home]->add_vm(config.vm, std::make_unique<wl::IdleGuest>());
  sla_.register_vm(gid, config.vm.credit);
  vm_cfgs_.push_back(std::move(config));
  home_.push_back(home);
  home_slot_.push_back(slot_id);
  vm_slots_.emplace_back();
  vm_state_.push_back(VmState::kInbound);
  held_wl_.emplace_back();
  held_since_.emplace_back();
  downtime_.emplace_back();
  migration_count_.push_back(0);
  fed_locked_.push_back(0);
  record_slot(home, gid, slot_id);
  set_powered(home, true);  // the destination must be receiving
  ++topology_version_;
  return gid;
}

void Cluster::mark_departed(GlobalVmId vm) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (vm_state_[vm] != VmState::kRunning)
    throw std::logic_error("Cluster: only a running VM can depart");
  // The link's detach already drained the slot (workload held in the
  // flight, credit exported, cap zeroed) — only the bookkeeping is ours.
  vm_state_[vm] = VmState::kDeparted;
  fed_locked_[vm] = 0;
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
}

void Cluster::complete_inbound(GlobalVmId vm, common::SimTime downtime) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (vm_state_[vm] != VmState::kInbound)
    throw std::logic_error("Cluster: complete_inbound on a non-inbound VM");
  set_powered(home_[vm], true);
  vm_state_[vm] = VmState::kRunning;
  downtime_[vm] += downtime;
  ++migration_count_[vm];
  // Same SLA contract as an intra-cluster stop-and-copy: the pause is one
  // fully violated window — a paused VM delivers nothing, whatever it
  // bought.
  if (downtime > common::SimTime{})
    sla_.record_window(vm, downtime, 0.0, /*saturated=*/true);
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
}

void Cluster::set_federation_lock(GlobalVmId vm, bool locked) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  fed_locked_[vm] = locked ? 1 : 0;
}

void Cluster::record_slot(HostId host, GlobalVmId vm, common::VmId slot) {
  auto& hs = host_slots_[host];
  hs.insert(std::lower_bound(hs.begin(), hs.end(), vm,
                             [](const auto& e, GlobalVmId g) { return e.first < g; }),
            {vm, slot});
  auto& vs = vm_slots_[vm];
  vs.insert(std::lower_bound(vs.begin(), vs.end(), host,
                             [](const auto& e, HostId h) { return e.first < h; }),
            {host, slot});
}

bool Cluster::has_slot(HostId host, GlobalVmId vm) const {
  const auto& hs = host_slots_.at(host);
  const auto it = std::lower_bound(hs.begin(), hs.end(), vm,
                                   [](const auto& e, GlobalVmId g) { return e.first < g; });
  return it != hs.end() && it->first == vm;
}

common::VmId Cluster::slot_on(HostId host, GlobalVmId vm) const {
  const auto& hs = host_slots_.at(host);
  const auto it = std::lower_bound(hs.begin(), hs.end(), vm,
                                   [](const auto& e, GlobalVmId g) { return e.first < g; });
  if (it == hs.end() || it->first != vm)
    throw std::invalid_argument("Cluster: VM has no slot on that host");
  return it->second;
}

common::VmId Cluster::ensure_slot(HostId host, GlobalVmId vm) {
  const auto& hs = host_slots_[host];
  const auto it = std::lower_bound(hs.begin(), hs.end(), vm,
                                   [](const auto& e, GlobalVmId g) { return e.first < g; });
  if (it != hs.end() && it->first == vm) return it->second;
  // First touch: park an IdleGuest in a freshly created slot. Mid-run this
  // is the Host::add_vm between-segments path.
  const common::VmId slot = hosts_[host]->add_vm(vm_cfgs_[vm].vm,
                                                 std::make_unique<wl::IdleGuest>());
  record_slot(host, vm, slot);
  return slot;
}

void Cluster::install_manager(std::unique_ptr<ClusterManager> manager) {
  if (started_) throw std::logic_error("Cluster: install_manager after run started");
  manager_ = std::move(manager);
}

void Cluster::install_faults(std::unique_ptr<fault::FaultInjector> injector) {
  if (started_) throw std::logic_error("Cluster: install_faults after run started");
  injector_ = std::move(injector);
}

void Cluster::install_control(std::unique_ptr<ctl::ControlPlane> control) {
  if (started_) throw std::logic_error("Cluster: install_control after run started");
  control_ = std::move(control);
}

void Cluster::schedule_at(common::SimTime at, std::function<void(common::SimTime)> fn) {
  if (started_) throw std::logic_error("Cluster: schedule_at after run started");
  hooks_.emplace_back(at, std::move(fn));
}

void Cluster::install_periodic_tasks() {
  // SLA sampling rides the hosts' monitor-window cadence: by the time the
  // cluster event at t = k*window fires, every host has closed its own
  // window ending at t (host events run before the cluster event — see
  // run_until), so the "last window" readings are exactly window k.
  const common::SimTime window = cfg_.host.monitor_window;
  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      events_, window, window, [this](common::SimTime t) { sample_sla(t); }));

  if (manager_) {
    const common::SimTime p = manager_->period();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, p, p, [this](common::SimTime t) { manager_->on_tick(t, *this); }));
  }
}

void Cluster::sample_sla(common::SimTime /*now*/) {
  const common::SimTime window = cfg_.host.monitor_window;
  for (GlobalVmId gid = 0; gid < vm_cfgs_.size(); ++gid) {
    // Paused VMs are accounted at attach time; orphaned VMs at restart
    // time; lost VMs stop accruing windows at the crash.
    if (vm_state_[gid] != VmState::kRunning) continue;
    if (engine_->detached(gid)) continue;  // pause accounted at attach time
    const hv::Host& h = *hosts_[home_[gid]];
    const common::VmId s = home_slot_[gid];
    sla_.record_window(gid, window, h.monitor().vm_absolute_load_pct(s),
                       h.vm_saturated_last_window(s));
  }
}

void Cluster::on_migration_done(const MigrationRecord& record) {
  ++topology_version_;  // any outcome: a flight left the in-flight set
  switch (record.outcome) {
    case MigrationOutcome::kCompleted:
      home_[record.vm] = record.to;
      home_slot_[record.vm] = slot_on(record.to, record.vm);
      downtime_[record.vm] += record.downtime;
      ++migration_count_[record.vm];
      // The stop-and-copy pause is SLA-visible: a full window of length
      // `downtime` in which a (by definition demand-bearing) VM received
      // nothing at all.
      sla_.record_window(record.vm, record.downtime, 0.0, /*saturated=*/true);
      break;
    case MigrationOutcome::kAbortedPrecopy:
      // The guest never stopped running on the source: residence, downtime
      // and SLA are all untouched. Only the agents' per-round overhead
      // remains — bytes that really were pushed.
      break;
    case MigrationOutcome::kAbortedStopCopy:
      // Rolled back to the source: residence unchanged, but the truncated
      // pause really happened and is charged like a completed flight's.
      downtime_[record.vm] += record.downtime;
      if (record.downtime > common::SimTime{})
        sla_.record_window(record.vm, record.downtime, 0.0, /*saturated=*/true);
      break;
    case MigrationOutcome::kLostSourceCrash:
      // The guest evaporated with its source; the crash sweep that caused
      // this runs right after and handles the host side.
      vm_state_[record.vm] = VmState::kLost;
      if (manager_) manager_->note_vm_event(record.vm);
      break;
  }
}

bool Cluster::migrate(GlobalVmId vm, HostId to) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (to >= hosts_.size()) throw std::invalid_argument("Cluster: bad destination host");
  if (to == home_[vm] || engine_->in_flight(vm)) return false;
  if (vm_state_[vm] != VmState::kRunning || crashed_[to]) return false;
  if (fed_locked_[vm]) return false;  // a federation flight owns its placement

  const HostId from = home_[vm];
  set_powered(to, true);  // the destination must be receiving
  const ClusterVmConfig& cfg = vm_cfgs_[vm];
  MigrationEngine::Endpoint source{hosts_[from].get(), home_slot_[vm], agents_[from], 0};
  MigrationEngine::Endpoint dest{hosts_[to].get(), ensure_slot(to, vm), agents_[to], 0};
  engine_->begin(vm, from, to, source, dest, cfg.memory_mb, cfg.dirty_mb_per_s,
                 cfg.vm.credit, now_,
                 [this](const MigrationRecord& r) { on_migration_done(r); });
  ++topology_version_;
  return true;
}

bool Cluster::host_in_use(HostId host) const {
  // kInbound counts: a federation flight is landing a guest here, and VOVO
  // parking the destination mid-transfer would strand the attach.
  for (const auto& [gid, s] : host_slots_[host])
    if (home_[gid] == host && (vm_state_[gid] == VmState::kRunning ||
                               vm_state_[gid] == VmState::kInbound))
      return true;
  return engine_->endpoint_in_flight(host);
}

bool Cluster::set_powered(HostId host, bool on) {
  if (host >= hosts_.size()) throw std::invalid_argument("Cluster: bad host id");
  if (on && crashed_[host]) return false;
  if (!on && host_in_use(host)) return false;
  // Only an actual flip is a topology change: the manager's VOVO pass
  // idempotently re-asserts power states every tick, and those no-ops must
  // not defeat the unchanged-tick early-out.
  if (meter_.powered(host) != on) ++topology_version_;
  meter_.set_powered(host, on, hosts_[host]->energy().joules());
  return true;
}

bool Cluster::crash_host(HostId host, bool restart_orphans) {
  if (host >= hosts_.size()) throw std::invalid_argument("Cluster: bad host id");
  if (crashed_[host]) return false;
  std::size_t alive = 0;
  for (const auto c : crashed_)
    if (c == 0) ++alive;
  if (alive <= 1) return false;  // a zero-host cluster cannot be simulated

  crashed_[host] = 1;
  // Migrations first, residents second: a destination crash then rolls its
  // guest back onto a source that is still intact, and a source crash
  // during pre-copy returns the guest to `host` in time for the resident
  // sweep below to orphan it like any other resident.
  engine_->abort_host_flights(host, now_);
  hv::Host& h = *hosts_[host];
  // Resident sweep over the host's slot holders, ascending VM id — only
  // VMs that actually touched this host can be resident on it.
  for (const auto& [gid, s] : host_slots_[host]) {
    if (home_[gid] != host || vm_state_[gid] != VmState::kRunning) continue;
    auto workload = h.swap_workload(s, std::make_unique<wl::IdleGuest>());
    // Crash semantics for credit: the balance dies with the host (unlike a
    // migration's export, nothing carries it), and the cap drops to zero so
    // the dead slot earns nothing.
    h.scheduler().set_cap(s, 0.0);
    h.scheduler().import_credit(s, common::SimTime{});
    if (restart_orphans) {
      vm_state_[gid] = VmState::kOrphaned;
      held_wl_[gid] = std::move(workload);
      held_since_[gid] = now_;
    } else {
      vm_state_[gid] = VmState::kLost;
    }
    if (manager_) manager_->note_vm_event(gid);
  }
  // Silence the host's hypervisor agent too — a crashed host burns no CPU.
  h.scheduler().set_cap(0, 0.0);
  h.scheduler().import_credit(0, common::SimTime{});
  if (manager_) manager_->note_host_crashed(host);
  ++topology_version_;
  const bool off = set_powered(host, false);
  (void)off;
  assert(off && "crashed host must be powerable-off after the sweep");
  return true;
}

bool Cluster::restart_vm(GlobalVmId vm, HostId to) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (to >= hosts_.size()) throw std::invalid_argument("Cluster: bad host id");
  if (vm_state_[vm] != VmState::kOrphaned || crashed_[to]) return false;

  set_powered(to, true);  // recovery may revive a VOVO-parked host
  hv::Host& dst = *hosts_[to];
  const common::VmId s = ensure_slot(to, vm);
  (void)dst.swap_workload(s, std::move(held_wl_[vm]));
  const ClusterVmConfig& cfg = vm_cfgs_[vm];
  // Same re-attach contract as a migration's attach: purchased credit
  // compensated for the destination's current P-state — but with an empty
  // balance, because the crash burned whatever the slot held.
  dst.scheduler().set_cap(s, core::compensated_credit(cfg.vm.credit, dst.cpu().ladder(),
                                                      dst.cpu().current_index()));
  dst.scheduler().import_credit(s, common::SimTime{});
  home_[vm] = to;
  home_slot_[vm] = s;
  vm_state_[vm] = VmState::kRunning;
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
  const common::SimTime outage = now_ - held_since_[vm];
  if (outage > common::SimTime{})
    sla_.record_window(vm, outage, 0.0, /*saturated=*/true);
  recoveries_.push_back(VmRecovery{vm, held_since_[vm], now_});
  return true;
}

bool Cluster::stop_vm(GlobalVmId vm) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (vm_state_[vm] != VmState::kRunning || engine_->in_flight(vm)) return false;
  if (fed_locked_[vm]) return false;  // a federation flight owns its placement

  hv::Host& h = *hosts_[home_[vm]];
  const common::VmId s = home_slot_[vm];
  // Same drain as a crash sweep — workload off-host, cap 0, balance gone —
  // but into the held store on purpose, and with no SLA consequence: the
  // monitor simply stops sampling a non-running VM (sample_sla's filter).
  held_wl_[vm] = h.swap_workload(s, std::make_unique<wl::IdleGuest>());
  h.scheduler().set_cap(s, 0.0);
  h.scheduler().import_credit(s, common::SimTime{});
  vm_state_[vm] = VmState::kStopped;
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
  return true;
}

bool Cluster::start_vm(GlobalVmId vm, HostId to) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (to >= hosts_.size()) throw std::invalid_argument("Cluster: bad host id");
  if (vm_state_[vm] != VmState::kStopped || crashed_[to]) return false;

  set_powered(to, true);  // resuming may revive a VOVO-parked host
  hv::Host& dst = *hosts_[to];
  const common::VmId s = ensure_slot(to, vm);
  (void)dst.swap_workload(s, std::move(held_wl_[vm]));
  const ClusterVmConfig& cfg = vm_cfgs_[vm];
  // Re-attach like a recovery restart — compensated purchased credit,
  // empty balance — but without the SLA outage charge: the interval was a
  // requested stop, not a violation.
  dst.scheduler().set_cap(s, core::compensated_credit(cfg.vm.credit, dst.cpu().ladder(),
                                                      dst.cpu().current_index()));
  dst.scheduler().import_credit(s, common::SimTime{});
  home_[vm] = to;
  home_slot_[vm] = s;
  vm_state_[vm] = VmState::kRunning;
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
  return true;
}

void Cluster::mark_lost(GlobalVmId vm) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  if (vm_state_[vm] != VmState::kOrphaned) return;
  held_wl_[vm].reset();
  vm_state_[vm] = VmState::kLost;
  ++topology_version_;
  if (manager_) manager_->note_vm_event(vm);
}

bool Cluster::abort_migration(GlobalVmId vm) {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  return engine_->cancel(vm, now_);
}

bool Cluster::abort_oldest_migration() {
  const auto vms = engine_->in_flight_vms();
  if (vms.empty()) return false;
  return engine_->cancel(vms.front(), now_);
}

void Cluster::set_link_bandwidth(double mb_per_s) {
  engine_->set_link_bandwidth(mb_per_s, now_);
}

std::size_t Cluster::crashed_count() const {
  std::size_t n = 0;
  for (const auto c : crashed_)
    if (c != 0) ++n;
  return n;
}

std::vector<GlobalVmId> Cluster::orphaned_vms() const {
  std::vector<GlobalVmId> vms;
  for (GlobalVmId gid = 0; gid < vm_state_.size(); ++gid)
    if (vm_state_[gid] == VmState::kOrphaned) vms.push_back(gid);
  return vms;
}

std::size_t Cluster::running_vm_count() const {
  std::size_t n = 0;
  for (const auto s : vm_state_)
    if (s == VmState::kRunning) ++n;
  return n;
}

std::size_t Cluster::lost_vm_count() const {
  std::size_t n = 0;
  for (const auto s : vm_state_)
    if (s == VmState::kLost) ++n;
  return n;
}

std::size_t Cluster::powered_on_count() const {
  std::size_t n = 0;
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    if (meter_.powered(h)) ++n;
  return n;
}

double Cluster::energy_joules() const {
  double total = 0.0;
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    total += meter_.host_joules(h, hosts_[h]->energy().joules());
  return total;
}

double Cluster::host_energy_joules(HostId host) const {
  if (host >= hosts_.size()) throw std::invalid_argument("Cluster: bad host id");
  return meter_.host_joules(host, hosts_[host]->energy().joules());
}

double Cluster::average_watts() const {
  return now_.sec() > 0.0 ? energy_joules() / now_.sec() : 0.0;
}

ClusterVmStats Cluster::vm_stats(GlobalVmId vm) const {
  if (vm >= vm_cfgs_.size()) throw std::invalid_argument("Cluster: bad VM id");
  ClusterVmStats stats;
  // Only hosts the VM actually touched hold any of its time; summed in
  // ascending host order so the totals are deterministic.
  for (const auto& [h, s] : vm_slots_[vm]) {
    stats.total_busy += hosts_[h]->vm(s).total_busy;
    stats.total_work += hosts_[h]->vm(s).total_work;
  }
  stats.downtime = downtime_[vm];
  stats.migrations = migration_count_[vm];
  return stats;
}

void Cluster::advance_hosts(common::SimTime target) {
  ++engine_stats_.segments;
  // Activity partition, on the coordinating thread: a host whose
  // quiescence certificate covers the whole segment is crossed in one
  // bulk skip (energy chunks, trace rows and periodic-event order all
  // byte-identical to running it — hv::Host::skip_idle_to); the rest
  // form the active list. The partition reads only per-host state, so
  // its outcome — and therefore every dispatched computation — is
  // independent of thread count.
  active_hosts_.clear();
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (hosts_[h]->next_activity_time() > target) {
      hosts_[h]->skip_idle_to(target);
      ++engine_stats_.bulk_skips;
    } else {
      active_hosts_.push_back(h);
    }
  }
  engine_stats_.dispatches += active_hosts_.size();
  if (!pool_) {  // serial driver
    for (const std::size_t h : active_hosts_) hosts_[h]->run_until(target);
    return;
  }
  // Pooled driver: each index touches exactly one host and hosts share no
  // mutable state between cluster events (the hv::Host contract), so the
  // fork-join computes precisely what the serial loop does — in whatever
  // thread interleaving — and the barrier restores the synchronized-fleet
  // picture before any cluster event can look. Only active hosts pay the
  // dispatch; the grain batches them per shared-counter hit.
  pool_->parallel_for(
      active_hosts_.size(),
      [this, target](std::size_t k) { hosts_[active_hosts_[k]]->run_until(target); },
      cfg_.execution.pool_grain);
}

void Cluster::run_until(common::SimTime until) {
  if (!started_) {
    install_periodic_tasks();
    // The fault schedule is armed once, here, onto the same queue the
    // periodic tasks use: a fault lands at a fixed (time, insertion-seq)
    // position, so any tie with a manager tick or SLA sample breaks the
    // same way in every engine — faults never perturb determinism. The
    // control plane arms after the injector (a command tying a crash
    // observes the post-crash world), and raw schedule_at hooks arm last,
    // in call order — the seam the control fuzz test uses to occupy the
    // exact queue positions ControlPlane::arm would.
    if (injector_) injector_->arm(*this, events_);
    if (control_) control_->arm(*this, events_);
    for (auto& [at, fn] : hooks_) events_.schedule(at, std::move(fn));
    hooks_.clear();
    started_ = true;
  }
  while (now_ < until) {
    // Advance every host to the next instant the cluster itself acts, then
    // act. Hosts reach `target` first (firing their own internal events up
    // to and including it), so a cluster event always observes — and
    // mutates — a fleet synchronized to its own timestamp. Cluster events
    // themselves always run serially on this thread, in the queue's
    // deterministic (time, insertion-sequence) order, whatever
    // ExecutionPolicy says.
    const common::SimTime next_event = events_.next_event_time(until);
    if (events_.empty() || next_event > until) {
      // Empty tail: no cluster event fires in (now_, until], so the whole
      // remainder is one segment — one head comparison, one bulk advance,
      // no per-iteration queue dispatch.
      advance_hosts(until);
      now_ = until;
      break;
    }
    if (next_event > now_) {
      advance_hosts(next_event);
      now_ = next_event;
    }
    events_.run_until(now_);
    // The queue removes cancelled entries eagerly, so firing leaves the
    // head strictly in the future (or the queue empty) — the invariant
    // that lets the next iteration trust a single peek.
    assert(events_.next_event_time(until) > now_ || events_.empty());
  }
}

}  // namespace pas::cluster
