// Live-migration model: pre-copy with dirty-page rounds, a stop-and-copy
// downtime window, and hypervisor CPU overhead on both ends.
//
// The cost model is the classic pre-copy iteration (Clark et al., the
// algorithm behind Xen's xl migrate, and the structure mirrored by the
// related migration-framework repo): round 0 pushes the VM's whole memory
// over the migration link; while a round of size S transfers (taking
// S / bandwidth seconds), the still-running guest redirties pages at its
// dirty rate, and the next round pushes exactly that redirtied set. Rounds
// shrink geometrically while dirty_rate < bandwidth; once the residual set
// falls under the stop-and-copy threshold (or the round budget runs out)
// the VM is paused, the residue is pushed, and execution resumes on the
// destination. The pause — downtime = residue / bandwidth + switch latency
// — is the SLA-visible cost; the per-round CPU charges on both hypervisor
// agents are the energy-visible cost.
//
// Failure semantics (the fault-injection subsystem's contract, see
// docs/ARCHITECTURE.md "Faults & recovery"):
//
//   * cancel() mid-pre-copy abandons the flight where it stands: rounds
//     already issued keep their injected overhead (the bytes were pushed),
//     unfired phase events are cancelled, and the guest — which never
//     stopped running on the source — is untouched. No credit ever left
//     the source, so the record carries exported == imported == 0.
//   * cancel() during the stop-and-copy pause rolls the guest back: the
//     held workload re-attaches to the SOURCE slot, the exported balance
//     is imported back there (exported == imported, the same conservation
//     contract as a completed flight), and the cap is re-established
//     compensated for the source's current P-state. The pause actually
//     experienced (cancel time − stop) is the record's downtime.
//   * A source-host crash during the pause is the one unrecoverable case:
//     the guest state exists only in transit, so the workload is destroyed
//     and the record marks the loss (imported == 0 — the crash, not the
//     engine, broke conservation, and the record says so).
//
//   * set_link_bandwidth() mid-flight re-plans every in-flight migration's
//     REMAINING rounds at the new rate: the round currently on the wire
//     completes on its committed schedule (its bytes are already windowed),
//     and the pre-copy loop is re-run from the next redirtied set with the
//     remaining round budget. A flight already in its pause is not
//     re-planned — the residue push has started.
//
// Everything here is a pure function of the inputs — fault events included,
// since those arrive as ordinary (deterministically ordered) cluster events
// — so a migration's event times are identical across fast-path, reference
// and parallel runs: the property the cluster differential tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/hypervisor_agent.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "hypervisor/host.hpp"
#include "sim/event_queue.hpp"

namespace pas::cluster {

/// Index of a host within the cluster.
using HostId = std::uint32_t;
/// Cluster-wide VM index (its slot on every host is kFirstGuestSlot + id).
using GlobalVmId = std::uint32_t;

struct MigrationConfig {
  /// Effective migration-link bandwidth (a dedicated 10 GbE does ~1 GB/s).
  double link_mb_per_s = 1000.0;
  /// Residual dirty set small enough to stop-and-copy.
  double stop_copy_threshold_mb = 32.0;
  /// Pre-copy round budget; a guest dirtying faster than the link never
  /// converges, so the residue is pushed after this many rounds regardless.
  std::size_t max_precopy_rounds = 8;
  /// Fixed switch-over cost on top of the residual transfer (ARP updates,
  /// device re-attach).
  common::SimTime switch_latency = common::msec(20);
  /// Hypervisor CPU work per MB pushed/received, in max-frequency
  /// microseconds — charged to the source/destination agents per round.
  double source_cpu_us_per_mb = 100.0;
  double dest_cpu_us_per_mb = 60.0;
};

struct MigrationPlan {
  /// Pre-copy rounds; round 0 is the full memory image.
  std::vector<double> round_mb;
  /// Residual set pushed during the pause.
  double stop_copy_mb = 0.0;
  common::SimTime precopy_duration{};
  /// Stop-and-copy pause: residue transfer + switch latency.
  common::SimTime downtime{};

  [[nodiscard]] double transferred_mb() const {
    double mb = stop_copy_mb;
    for (const double r : round_mb) mb += r;
    return mb;
  }
};

/// Computes the round structure for a guest of `memory_mb` dirtying at
/// `dirty_mb_per_s`. Pure; throws std::invalid_argument on non-positive
/// memory or bandwidth.
[[nodiscard]] MigrationPlan plan_migration(double memory_mb, double dirty_mb_per_s,
                                           const MigrationConfig& config);

/// How a migration ended. Everything except kCompleted is an abort path;
/// only kLostSourceCrash loses the guest.
enum class MigrationOutcome : std::uint8_t {
  kCompleted = 0,
  /// Cancelled before the stop-and-copy pause: the guest never stopped
  /// running on the source. No credit moved (exported == imported == 0).
  kAbortedPrecopy,
  /// Cancelled during the pause: the guest rolled back to the source with
  /// its credit balance re-imported there (exported == imported).
  kAbortedStopCopy,
  /// The source host crashed during the pause: the guest state existed
  /// only in transit and is gone (imported == 0).
  kLostSourceCrash,
};

struct MigrationRecord {
  GlobalVmId vm = 0;
  HostId from = 0;
  HostId to = 0;
  common::SimTime start{};      // pre-copy begins
  common::SimTime stop{};       // stop-and-copy pause begins (detach)
  common::SimTime end{};        // execution resumes (destination, or source on rollback)
  std::size_t rounds = 0;       // pre-copy rounds actually issued
  double transferred_mb = 0.0;  // bytes actually pushed (issued rounds + residue)
  /// Pause actually experienced: the planned pause when completed, the
  /// truncated pause (end − stop) on a stop-and-copy abort, zero on a
  /// pre-copy abort.
  common::SimTime downtime{};
  MigrationOutcome outcome = MigrationOutcome::kCompleted;
  /// Credit balance carried across: export on the source == import on the
  /// destination — or back into the source on a rollback (the conservation
  /// contract). Only a source crash leaves imported == 0 < exported.
  common::SimTime credit_exported{};
  common::SimTime credit_imported{};

  [[nodiscard]] bool aborted() const { return outcome != MigrationOutcome::kCompleted; }
};

/// Drives migrations over the cluster's event queue: injects per-round
/// overhead into both hypervisor agents, detaches the guest at the pause,
/// and re-attaches it (workload object + credit balance + cap) on the
/// destination. One engine per cluster; multiple migrations of *different*
/// VMs may be in flight at once.
class MigrationEngine {
 public:
  /// The per-host handles a migration needs on each end.
  struct Endpoint {
    hv::Host* host = nullptr;
    common::VmId vm_slot = 0;
    HypervisorAgent* agent = nullptr;
    common::VmId agent_slot = 0;
  };

  using CompletionFn = std::function<void(const MigrationRecord&)>;

  MigrationEngine(MigrationConfig config, sim::EventQueue& events);

  /// Starts a live migration at `now`. Schedules every phase event up
  /// front; `done` fires at attach time, after the guest is runnable on the
  /// destination — or at cancel time with the record's abort outcome.
  /// Returns the plan by value (the engine's own copy dies with the flight
  /// at attach time). Precondition: !in_flight(vm) — violating it throws
  /// std::logic_error naming the VM.
  ///
  /// `on_detach` (optional) fires right after the stop-and-copy detach
  /// drained the source slot — the federation tier uses it to mark the
  /// guest as departed from the source shard while the residue is on the
  /// wire. `extra_switch_latency` (optional) is a per-flight addition to
  /// the config's switch latency — the class-aware switch-over penalty of
  /// a cross-class link move; it survives bandwidth re-plans.
  MigrationPlan begin(GlobalVmId vm, HostId from, HostId to, Endpoint source,
                      Endpoint dest, double memory_mb, double dirty_mb_per_s,
                      common::Percent credit_pct, common::SimTime now, CompletionFn done,
                      CompletionFn on_detach = {},
                      common::SimTime extra_switch_latency = {});

  /// Aborts the in-flight migration of `vm` at `now` (see the file header
  /// for the two abort paths). Returns false if the VM is not in flight.
  /// The completion callback fires with the aborted record.
  bool cancel(GlobalVmId vm, common::SimTime now);

  /// Aborts every flight with `host` as an endpoint — the crash path. A
  /// destination crash rolls the guest back to the source; a source crash
  /// during the pause loses the guest (kLostSourceCrash). A source crash
  /// during pre-copy aborts like cancel(): the guest is still resident on
  /// the (now dead) source, and the caller's crash sweep decides its fate.
  /// Returns the number of flights aborted.
  std::size_t abort_host_flights(HostId host, common::SimTime now);

  /// Changes the migration-link bandwidth at `now` and re-plans the
  /// remaining rounds of every in-flight pre-copy at the new rate (the
  /// round on the wire completes on its committed schedule; a flight in
  /// its pause is untouched). Throws std::invalid_argument on a
  /// non-positive rate.
  void set_link_bandwidth(double mb_per_s, common::SimTime now);

  [[nodiscard]] bool in_flight(GlobalVmId vm) const;
  /// True from the stop-and-copy pause until attach (the guest exists on
  /// neither host's schedule).
  [[nodiscard]] bool detached(GlobalVmId vm) const;
  /// True if any in-flight migration has `host` as source or destination.
  [[nodiscard]] bool endpoint_in_flight(HostId host) const;
  [[nodiscard]] std::size_t active_count() const { return flights_.size(); }
  /// In-flight VM ids in flight-start order (the deterministic "oldest
  /// first" order fault injection aborts in).
  [[nodiscard]] std::vector<GlobalVmId> in_flight_vms() const;
  [[nodiscard]] const std::vector<MigrationRecord>& completed() const { return completed_; }
  [[nodiscard]] const MigrationConfig& config() const { return cfg_; }

 private:
  struct Flight {
    MigrationRecord record;
    MigrationPlan plan;
    Endpoint source;
    Endpoint dest;
    common::Percent credit_pct = 0.0;
    double memory_mb = 0.0;
    double dirty_mb_per_s = 0.0;
    std::unique_ptr<wl::Workload> held;  // guest state during the pause
    CompletionFn done;
    CompletionFn on_detach;
    /// Per-flight addition to cfg_.switch_latency (class-aware switch-over
    /// penalty); folded into plan.downtime at begin() and on every re-plan.
    common::SimTime switch_extra{};
    // Re-planning/cancel bookkeeping: per-round scheduled start instants,
    // the matching event ids, and how many round events have fired.
    std::vector<common::SimTime> round_starts;
    std::vector<sim::EventId> round_events;
    std::size_t rounds_fired = 0;
    sim::EventId stop_event = sim::kInvalidEvent;
    sim::EventId end_event = sim::kInvalidEvent;
  };

  void inject_round(Flight& flight, double mb);
  void detach(Flight& flight);
  void attach(Flight& flight);
  /// Schedules round events from index `first_round` plus the stop/attach
  /// events, recording their ids on the flight.
  void schedule_phase_events(Flight& flight, std::size_t first_round);
  /// Cancels every not-yet-fired event of the flight.
  void cancel_pending_events(Flight& flight);
  /// Recomputes the flight's remaining rounds at the current bandwidth.
  void replan_flight(Flight& flight, common::SimTime now);
  /// Removes the flight, records it, and fires the completion callback.
  void finish(Flight& flight);

  MigrationConfig cfg_;
  sim::EventQueue& events_;
  std::vector<std::unique_ptr<Flight>> flights_;  // stable addresses for event captures
  std::vector<MigrationRecord> completed_;
};

}  // namespace pas::cluster
