// Live-migration model: pre-copy with dirty-page rounds, a stop-and-copy
// downtime window, and hypervisor CPU overhead on both ends.
//
// The cost model is the classic pre-copy iteration (Clark et al., the
// algorithm behind Xen's xl migrate, and the structure mirrored by the
// related migration-framework repo): round 0 pushes the VM's whole memory
// over the migration link; while a round of size S transfers (taking
// S / bandwidth seconds), the still-running guest redirties pages at its
// dirty rate, and the next round pushes exactly that redirtied set. Rounds
// shrink geometrically while dirty_rate < bandwidth; once the residual set
// falls under the stop-and-copy threshold (or the round budget runs out)
// the VM is paused, the residue is pushed, and execution resumes on the
// destination. The pause — downtime = residue / bandwidth + switch latency
// — is the SLA-visible cost; the per-round CPU charges on both hypervisor
// agents are the energy-visible cost.
//
// Everything here is a pure function of the inputs, so a migration's event
// times are identical across fast-path and reference runs — the property
// the cluster differential tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/hypervisor_agent.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "hypervisor/host.hpp"
#include "sim/event_queue.hpp"

namespace pas::cluster {

/// Index of a host within the cluster.
using HostId = std::uint32_t;
/// Cluster-wide VM index (its slot on every host is kFirstGuestSlot + id).
using GlobalVmId = std::uint32_t;

struct MigrationConfig {
  /// Effective migration-link bandwidth (a dedicated 10 GbE does ~1 GB/s).
  double link_mb_per_s = 1000.0;
  /// Residual dirty set small enough to stop-and-copy.
  double stop_copy_threshold_mb = 32.0;
  /// Pre-copy round budget; a guest dirtying faster than the link never
  /// converges, so the residue is pushed after this many rounds regardless.
  std::size_t max_precopy_rounds = 8;
  /// Fixed switch-over cost on top of the residual transfer (ARP updates,
  /// device re-attach).
  common::SimTime switch_latency = common::msec(20);
  /// Hypervisor CPU work per MB pushed/received, in max-frequency
  /// microseconds — charged to the source/destination agents per round.
  double source_cpu_us_per_mb = 100.0;
  double dest_cpu_us_per_mb = 60.0;
};

struct MigrationPlan {
  /// Pre-copy rounds; round 0 is the full memory image.
  std::vector<double> round_mb;
  /// Residual set pushed during the pause.
  double stop_copy_mb = 0.0;
  common::SimTime precopy_duration{};
  /// Stop-and-copy pause: residue transfer + switch latency.
  common::SimTime downtime{};

  [[nodiscard]] double transferred_mb() const {
    double mb = stop_copy_mb;
    for (const double r : round_mb) mb += r;
    return mb;
  }
};

/// Computes the round structure for a guest of `memory_mb` dirtying at
/// `dirty_mb_per_s`. Pure; throws std::invalid_argument on non-positive
/// memory or bandwidth.
[[nodiscard]] MigrationPlan plan_migration(double memory_mb, double dirty_mb_per_s,
                                           const MigrationConfig& config);

struct MigrationRecord {
  GlobalVmId vm = 0;
  HostId from = 0;
  HostId to = 0;
  common::SimTime start{};      // pre-copy begins
  common::SimTime stop{};       // stop-and-copy pause begins (detach)
  common::SimTime end{};        // execution resumes on the destination
  std::size_t rounds = 0;
  double transferred_mb = 0.0;
  common::SimTime downtime{};
  /// Credit balance carried across: export on the source == import on the
  /// destination (the conservation contract).
  common::SimTime credit_exported{};
  common::SimTime credit_imported{};
};

/// Drives migrations over the cluster's event queue: injects per-round
/// overhead into both hypervisor agents, detaches the guest at the pause,
/// and re-attaches it (workload object + credit balance + cap) on the
/// destination. One engine per cluster; multiple migrations of *different*
/// VMs may be in flight at once.
class MigrationEngine {
 public:
  /// The per-host handles a migration needs on each end.
  struct Endpoint {
    hv::Host* host = nullptr;
    common::VmId vm_slot = 0;
    HypervisorAgent* agent = nullptr;
    common::VmId agent_slot = 0;
  };

  using CompletionFn = std::function<void(const MigrationRecord&)>;

  MigrationEngine(MigrationConfig config, sim::EventQueue& events);

  /// Starts a live migration at `now`. Schedules every phase event up
  /// front; `done` fires at attach time, after the guest is runnable on the
  /// destination. Returns the plan by value (the engine's own copy dies
  /// with the flight at attach time). Precondition: !in_flight(vm).
  MigrationPlan begin(GlobalVmId vm, HostId from, HostId to, Endpoint source,
                      Endpoint dest, double memory_mb, double dirty_mb_per_s,
                      common::Percent credit_pct, common::SimTime now, CompletionFn done);

  [[nodiscard]] bool in_flight(GlobalVmId vm) const;
  /// True from the stop-and-copy pause until attach (the guest exists on
  /// neither host's schedule).
  [[nodiscard]] bool detached(GlobalVmId vm) const;
  /// True if any in-flight migration has `host` as source or destination.
  [[nodiscard]] bool endpoint_in_flight(HostId host) const;
  [[nodiscard]] std::size_t active_count() const { return flights_.size(); }
  [[nodiscard]] const std::vector<MigrationRecord>& completed() const { return completed_; }
  [[nodiscard]] const MigrationConfig& config() const { return cfg_; }

 private:
  struct Flight {
    MigrationRecord record;
    MigrationPlan plan;
    Endpoint source;
    Endpoint dest;
    common::Percent credit_pct = 0.0;
    std::unique_ptr<wl::Workload> held;  // guest state during the pause
    CompletionFn done;
  };

  void inject_round(Flight& flight, double mb);
  void detach(Flight& flight);
  void attach(Flight& flight);

  MigrationConfig cfg_;
  sim::EventQueue& events_;
  std::vector<std::unique_ptr<Flight>> flights_;  // stable addresses for event captures
  std::vector<MigrationRecord> completed_;
};

}  // namespace pas::cluster
