#include "cluster/migration.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/compensation.hpp"
#include "workload/synthetic.hpp"

namespace pas::cluster {

namespace {

common::SimTime transfer_time(double mb, double mb_per_s) {
  const auto us = static_cast<std::int64_t>(std::llround(mb / mb_per_s * 1e6));
  return common::usec(std::max<std::int64_t>(us, 1));
}

}  // namespace

MigrationPlan plan_migration(double memory_mb, double dirty_mb_per_s,
                             const MigrationConfig& config) {
  if (memory_mb <= 0.0) throw std::invalid_argument("plan_migration: memory must be positive");
  if (config.link_mb_per_s <= 0.0)
    throw std::invalid_argument("plan_migration: link bandwidth must be positive");
  if (dirty_mb_per_s < 0.0)
    throw std::invalid_argument("plan_migration: negative dirty rate");

  MigrationPlan plan;
  double pending = memory_mb;
  std::int64_t precopy_us = 0;
  for (std::size_t round = 0; round < std::max<std::size_t>(config.max_precopy_rounds, 1);
       ++round) {
    plan.round_mb.push_back(pending);
    const common::SimTime t = transfer_time(pending, config.link_mb_per_s);
    precopy_us += t.us();
    // Pages redirtied while this round was in flight; a guest cannot dirty
    // more than its whole memory.
    pending = std::min(memory_mb, dirty_mb_per_s * t.sec());
    if (pending <= config.stop_copy_threshold_mb) break;
  }
  plan.stop_copy_mb = pending;
  plan.precopy_duration = common::usec(precopy_us);
  plan.downtime =
      (pending > 0.0 ? transfer_time(pending, config.link_mb_per_s) : common::SimTime{}) +
      config.switch_latency;
  return plan;
}

MigrationEngine::MigrationEngine(MigrationConfig config, sim::EventQueue& events)
    : cfg_(config), events_(events) {}

bool MigrationEngine::in_flight(GlobalVmId vm) const {
  return std::any_of(flights_.begin(), flights_.end(),
                     [vm](const auto& f) { return f->record.vm == vm; });
}

bool MigrationEngine::detached(GlobalVmId vm) const {
  return std::any_of(flights_.begin(), flights_.end(), [vm](const auto& f) {
    return f->record.vm == vm && f->held != nullptr;
  });
}

bool MigrationEngine::endpoint_in_flight(HostId host) const {
  return std::any_of(flights_.begin(), flights_.end(), [host](const auto& f) {
    return f->record.from == host || f->record.to == host;
  });
}

std::vector<GlobalVmId> MigrationEngine::in_flight_vms() const {
  std::vector<GlobalVmId> vms;
  vms.reserve(flights_.size());
  for (const auto& f : flights_) vms.push_back(f->record.vm);
  return vms;
}

MigrationPlan MigrationEngine::begin(GlobalVmId vm, HostId from, HostId to,
                                     Endpoint source, Endpoint dest, double memory_mb,
                                     double dirty_mb_per_s, common::Percent credit_pct,
                                     common::SimTime now, CompletionFn done,
                                     CompletionFn on_detach,
                                     common::SimTime extra_switch_latency) {
  if (in_flight(vm))
    throw std::logic_error("MigrationEngine: VM " + std::to_string(vm) +
                           " already in flight");
  if (source.host == nullptr || dest.host == nullptr)
    throw std::invalid_argument("MigrationEngine: endpoints required");

  auto flight = std::make_unique<Flight>();
  Flight* f = flight.get();
  f->plan = plan_migration(memory_mb, dirty_mb_per_s, cfg_);
  f->plan.downtime += extra_switch_latency;
  f->source = source;
  f->dest = dest;
  f->credit_pct = credit_pct;
  f->memory_mb = memory_mb;
  f->dirty_mb_per_s = dirty_mb_per_s;
  f->done = std::move(done);
  f->on_detach = std::move(on_detach);
  f->switch_extra = extra_switch_latency;
  f->record.vm = vm;
  f->record.from = from;
  f->record.to = to;
  f->record.start = now;
  f->record.stop = now + f->plan.precopy_duration;
  f->record.end = f->record.stop + f->plan.downtime;
  f->record.rounds = f->plan.round_mb.size();
  f->record.transferred_mb = f->plan.transferred_mb();
  f->record.downtime = f->plan.downtime;

  common::SimTime round_start = now;
  for (const double mb : f->plan.round_mb) {
    f->round_starts.push_back(round_start);
    round_start += transfer_time(mb, cfg_.link_mb_per_s);
  }
  flights_.push_back(std::move(flight));
  schedule_phase_events(*f, 0);
  return f->plan;
}

void MigrationEngine::schedule_phase_events(Flight& flight, std::size_t first_round) {
  // Every phase event lands on the cluster queue, i.e. at instants where
  // every host is synchronized — the lockstep invariant that keeps
  // fast-path and reference runs identical. Ids are kept so an abort or a
  // bandwidth re-plan can cancel exactly the not-yet-fired tail.
  Flight* f = &flight;
  assert(flight.round_starts.size() == flight.plan.round_mb.size());
  flight.round_events.resize(flight.plan.round_mb.size(), sim::kInvalidEvent);
  for (std::size_t r = first_round; r < flight.plan.round_mb.size(); ++r) {
    flight.round_events[r] =
        events_.schedule(flight.round_starts[r], [this, f, r](common::SimTime) {
          f->rounds_fired = r + 1;
          inject_round(*f, f->plan.round_mb[r]);
        });
  }
  flight.stop_event = events_.schedule(flight.record.stop, [this, f](common::SimTime) {
    if (f->plan.stop_copy_mb > 0.0) inject_round(*f, f->plan.stop_copy_mb);
    detach(*f);
  });
  flight.end_event =
      events_.schedule(flight.record.end, [this, f](common::SimTime) { attach(*f); });
}

void MigrationEngine::cancel_pending_events(Flight& flight) {
  for (std::size_t r = flight.rounds_fired; r < flight.round_events.size(); ++r)
    events_.cancel(flight.round_events[r]);
  // These return false when the phase already fired (e.g. the stop event of
  // a paused flight) — exactly the don't-care case.
  events_.cancel(flight.stop_event);
  events_.cancel(flight.end_event);
}

bool MigrationEngine::cancel(GlobalVmId vm, common::SimTime now) {
  const auto it = std::find_if(flights_.begin(), flights_.end(),
                               [vm](const auto& f) { return f->record.vm == vm; });
  if (it == flights_.end()) return false;
  Flight& f = **it;
  cancel_pending_events(f);
  if (f.held == nullptr) {
    // Pre-copy abort: the guest never stopped running on the source; no
    // credit moved. Rounds already issued keep their injected overhead —
    // overhead is charged at round start, when the push begins — so the
    // record reports exactly the bytes whose push was started.
    f.record.outcome = MigrationOutcome::kAbortedPrecopy;
    f.record.stop = now;
    f.record.end = now;
    f.record.downtime = common::SimTime{};
    f.record.rounds = f.rounds_fired;
    double mb = 0.0;
    for (std::size_t r = 0; r < f.rounds_fired; ++r) mb += f.plan.round_mb[r];
    f.record.transferred_mb = mb;
  } else {
    // Stop-and-copy abort: roll the guest back onto its source slot. The
    // rollback is modeled as instantaneous (the guest state never left the
    // source; "switching back" is dropping the in-flight copy), so the
    // pause the VM actually suffered is now − stop. The exported balance
    // re-imports on the source — conservation holds exactly as on the
    // completed path, just into the original slot — and the cap comes back
    // compensated for the source's *current* P-state, which may have
    // changed since detach.
    hv::Host& src = *f.source.host;
    (void)src.swap_workload(f.source.vm_slot, std::move(f.held));
    src.scheduler().set_cap(f.source.vm_slot,
                            core::compensated_credit(f.credit_pct, src.cpu().ladder(),
                                                     src.cpu().current_index()));
    src.scheduler().import_credit(f.source.vm_slot, f.record.credit_exported);
    f.record.credit_imported = f.record.credit_exported;
    f.record.outcome = MigrationOutcome::kAbortedStopCopy;
    f.record.end = now;
    f.record.downtime = now - f.record.stop;
  }
  finish(f);
  return true;
}

std::size_t MigrationEngine::abort_host_flights(HostId host, common::SimTime now) {
  std::size_t aborted = 0;
  for (;;) {
    const auto it = std::find_if(flights_.begin(), flights_.end(), [host](const auto& f) {
      return f->record.from == host || f->record.to == host;
    });
    if (it == flights_.end()) break;
    Flight& f = **it;
    if (f.record.from == host && f.held != nullptr) {
      // Source crashed while the guest was detached: its state existed only
      // in transit and is gone. The exported credit is gone with it — the
      // crash, not the engine, broke conservation, and the record's
      // imported == 0 says so.
      cancel_pending_events(f);
      f.held.reset();
      f.record.outcome = MigrationOutcome::kLostSourceCrash;
      f.record.end = now;
      f.record.downtime = now - f.record.stop;
      finish(f);
    } else {
      // Destination crash (any phase) or source crash during pre-copy:
      // the ordinary abort paths apply — the guest is on the source (or
      // rolls back to it), and the caller's crash sweep decides its fate.
      cancel(f.record.vm, now);
    }
    ++aborted;
  }
  return aborted;
}

void MigrationEngine::set_link_bandwidth(double mb_per_s, common::SimTime now) {
  if (mb_per_s <= 0.0)
    throw std::invalid_argument("MigrationEngine: link bandwidth must be positive");
  cfg_.link_mb_per_s = mb_per_s;
  // Paused flights are not re-planned: their residue push is committed.
  for (const auto& f : flights_)
    if (f->held == nullptr) replan_flight(*f, now);
}

void MigrationEngine::replan_flight(Flight& flight, common::SimTime now) {
  (void)now;
  // Committed-round rule: rounds whose push already started complete on
  // their old schedule (the bytes are already windowed on the wire), so the
  // re-plan keeps rounds [0, rounds_fired) verbatim and re-runs the
  // pre-copy recurrence from the redirtied set that feeds the next round.
  const std::size_t keep = flight.rounds_fired;
  // The set feeding round `keep` was dirtied during round keep−1, which
  // runs at its committed (old-rate) schedule — so its planned size stands.
  const double seed_pending = keep < flight.plan.round_mb.size()
                                  ? flight.plan.round_mb[keep]
                                  : flight.plan.stop_copy_mb;
  const common::SimTime seed_time =
      keep < flight.round_starts.size() ? flight.round_starts[keep] : flight.record.stop;

  cancel_pending_events(flight);
  flight.plan.round_mb.resize(keep);
  flight.round_starts.resize(keep);
  flight.round_events.resize(keep);

  double pending = seed_pending;
  common::SimTime t = seed_time;
  const std::size_t budget = std::max<std::size_t>(cfg_.max_precopy_rounds, 1);
  // Mirrors plan_migration: the first round is unconditional (round 0 pushes
  // the full image even when memory ≤ threshold); later rounds run only
  // while the redirtied set stays above the stop-copy threshold.
  bool unconditional = keep == 0;
  while (flight.plan.round_mb.size() < budget &&
         (unconditional || pending > cfg_.stop_copy_threshold_mb)) {
    unconditional = false;
    flight.plan.round_mb.push_back(pending);
    flight.round_starts.push_back(t);
    const common::SimTime dt = transfer_time(pending, cfg_.link_mb_per_s);
    t += dt;
    pending = std::min(flight.memory_mb, flight.dirty_mb_per_s * dt.sec());
  }
  flight.plan.stop_copy_mb = pending;
  flight.plan.precopy_duration = t - flight.record.start;
  flight.plan.downtime =
      (pending > 0.0 ? transfer_time(pending, cfg_.link_mb_per_s) : common::SimTime{}) +
      cfg_.switch_latency + flight.switch_extra;
  flight.record.stop = t;
  flight.record.end = t + flight.plan.downtime;
  flight.record.downtime = flight.plan.downtime;
  flight.record.rounds = flight.plan.round_mb.size();
  flight.record.transferred_mb = flight.plan.transferred_mb();
  schedule_phase_events(flight, keep);
}

void MigrationEngine::inject_round(Flight& flight, double mb) {
  flight.source.agent->inject(common::mf_usec(mb * cfg_.source_cpu_us_per_mb));
  flight.source.host->notify_workload_changed(flight.source.agent_slot);
  flight.dest.agent->inject(common::mf_usec(mb * cfg_.dest_cpu_us_per_mb));
  flight.dest.host->notify_workload_changed(flight.dest.agent_slot);
}

void MigrationEngine::detach(Flight& flight) {
  assert(flight.held == nullptr);
  hv::Host& src = *flight.source.host;
  flight.held = src.swap_workload(flight.source.vm_slot, std::make_unique<wl::IdleGuest>());
  flight.record.credit_exported = src.scheduler().export_credit(flight.source.vm_slot);
  // Drain the source slot so credit exists in exactly one place — and zero
  // its cap so accounting refills stop minting credit into the empty slot
  // (the attach restores the cap on the destination; a VM in flight earns
  // nothing, which is also why the pause is SLA-charged).
  src.scheduler().set_cap(flight.source.vm_slot, 0.0);
  src.scheduler().import_credit(flight.source.vm_slot, common::SimTime{});
  assert(flight.held != nullptr);
  assert(endpoint_in_flight(flight.record.from) && endpoint_in_flight(flight.record.to));
  if (flight.on_detach) flight.on_detach(flight.record);
}

void MigrationEngine::attach(Flight& flight) {
  assert(flight.held != nullptr);
  hv::Host& dst = *flight.dest.host;
  (void)dst.swap_workload(flight.dest.vm_slot, std::move(flight.held));
  // The destination resumes at the purchased credit compensated (eq. 4)
  // for the destination's *current* P-state — attaching the raw credit on
  // a down-scaled host would shrink what the customer bought until the
  // next manager pass (up to a whole period of SLA violations).
  dst.scheduler().set_cap(flight.dest.vm_slot,
                          core::compensated_credit(flight.credit_pct, dst.cpu().ladder(),
                                                   dst.cpu().current_index()));
  dst.scheduler().import_credit(flight.dest.vm_slot, flight.record.credit_exported);
  flight.record.credit_imported = flight.record.credit_exported;
  flight.record.outcome = MigrationOutcome::kCompleted;
  finish(flight);
}

void MigrationEngine::finish(Flight& flight) {
  const MigrationRecord record = flight.record;
  CompletionFn done = std::move(flight.done);
  const auto it = std::find_if(flights_.begin(), flights_.end(),
                               [&](const auto& f) { return f.get() == &flight; });
  assert(it != flights_.end());
  flights_.erase(it);
  assert(!in_flight(record.vm));
  completed_.push_back(record);
  if (done) done(record);
}

}  // namespace pas::cluster
