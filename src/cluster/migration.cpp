#include "cluster/migration.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/compensation.hpp"
#include "workload/synthetic.hpp"

namespace pas::cluster {

namespace {

common::SimTime transfer_time(double mb, double mb_per_s) {
  const auto us = static_cast<std::int64_t>(std::llround(mb / mb_per_s * 1e6));
  return common::usec(std::max<std::int64_t>(us, 1));
}

}  // namespace

MigrationPlan plan_migration(double memory_mb, double dirty_mb_per_s,
                             const MigrationConfig& config) {
  if (memory_mb <= 0.0) throw std::invalid_argument("plan_migration: memory must be positive");
  if (config.link_mb_per_s <= 0.0)
    throw std::invalid_argument("plan_migration: link bandwidth must be positive");
  if (dirty_mb_per_s < 0.0)
    throw std::invalid_argument("plan_migration: negative dirty rate");

  MigrationPlan plan;
  double pending = memory_mb;
  std::int64_t precopy_us = 0;
  for (std::size_t round = 0; round < std::max<std::size_t>(config.max_precopy_rounds, 1);
       ++round) {
    plan.round_mb.push_back(pending);
    const common::SimTime t = transfer_time(pending, config.link_mb_per_s);
    precopy_us += t.us();
    // Pages redirtied while this round was in flight; a guest cannot dirty
    // more than its whole memory.
    pending = std::min(memory_mb, dirty_mb_per_s * t.sec());
    if (pending <= config.stop_copy_threshold_mb) break;
  }
  plan.stop_copy_mb = pending;
  plan.precopy_duration = common::usec(precopy_us);
  plan.downtime =
      (pending > 0.0 ? transfer_time(pending, config.link_mb_per_s) : common::SimTime{}) +
      config.switch_latency;
  return plan;
}

MigrationEngine::MigrationEngine(MigrationConfig config, sim::EventQueue& events)
    : cfg_(config), events_(events) {}

bool MigrationEngine::in_flight(GlobalVmId vm) const {
  return std::any_of(flights_.begin(), flights_.end(),
                     [vm](const auto& f) { return f->record.vm == vm; });
}

bool MigrationEngine::detached(GlobalVmId vm) const {
  return std::any_of(flights_.begin(), flights_.end(), [vm](const auto& f) {
    return f->record.vm == vm && f->held != nullptr;
  });
}

bool MigrationEngine::endpoint_in_flight(HostId host) const {
  return std::any_of(flights_.begin(), flights_.end(), [host](const auto& f) {
    return f->record.from == host || f->record.to == host;
  });
}

MigrationPlan MigrationEngine::begin(GlobalVmId vm, HostId from, HostId to,
                                     Endpoint source, Endpoint dest, double memory_mb,
                                     double dirty_mb_per_s, common::Percent credit_pct,
                                     common::SimTime now, CompletionFn done) {
  if (in_flight(vm)) throw std::logic_error("MigrationEngine: VM already in flight");
  if (source.host == nullptr || dest.host == nullptr)
    throw std::invalid_argument("MigrationEngine: endpoints required");

  auto flight = std::make_unique<Flight>();
  Flight* f = flight.get();
  f->plan = plan_migration(memory_mb, dirty_mb_per_s, cfg_);
  f->source = source;
  f->dest = dest;
  f->credit_pct = credit_pct;
  f->done = std::move(done);
  f->record.vm = vm;
  f->record.from = from;
  f->record.to = to;
  f->record.start = now;
  f->record.stop = now + f->plan.precopy_duration;
  f->record.end = f->record.stop + f->plan.downtime;
  f->record.rounds = f->plan.round_mb.size();
  f->record.transferred_mb = f->plan.transferred_mb();
  f->record.downtime = f->plan.downtime;
  flights_.push_back(std::move(flight));

  // Every phase event is scheduled up front: round-overhead injections at
  // each round's start, the detach at the pause, the attach at completion.
  // All of them land on the cluster queue, i.e. at instants where every
  // host is synchronized — the lockstep invariant that keeps fast-path and
  // reference runs identical.
  common::SimTime round_start = now;
  for (std::size_t r = 0; r < f->plan.round_mb.size(); ++r) {
    const double mb = f->plan.round_mb[r];
    events_.schedule(round_start,
                     [this, f, mb](common::SimTime) { inject_round(*f, mb); });
    round_start += transfer_time(mb, cfg_.link_mb_per_s);
  }
  events_.schedule(f->record.stop, [this, f](common::SimTime) {
    if (f->plan.stop_copy_mb > 0.0) inject_round(*f, f->plan.stop_copy_mb);
    detach(*f);
  });
  events_.schedule(f->record.end, [this, f](common::SimTime) { attach(*f); });
  return f->plan;
}

void MigrationEngine::inject_round(Flight& flight, double mb) {
  flight.source.agent->inject(common::mf_usec(mb * cfg_.source_cpu_us_per_mb));
  flight.source.host->notify_workload_changed(flight.source.agent_slot);
  flight.dest.agent->inject(common::mf_usec(mb * cfg_.dest_cpu_us_per_mb));
  flight.dest.host->notify_workload_changed(flight.dest.agent_slot);
}

void MigrationEngine::detach(Flight& flight) {
  assert(flight.held == nullptr);
  hv::Host& src = *flight.source.host;
  flight.held = src.swap_workload(flight.source.vm_slot, std::make_unique<wl::IdleGuest>());
  flight.record.credit_exported = src.scheduler().export_credit(flight.source.vm_slot);
  // Drain the source slot so credit exists in exactly one place — and zero
  // its cap so accounting refills stop minting credit into the empty slot
  // (the attach restores the cap on the destination; a VM in flight earns
  // nothing, which is also why the pause is SLA-charged).
  src.scheduler().set_cap(flight.source.vm_slot, 0.0);
  src.scheduler().import_credit(flight.source.vm_slot, common::SimTime{});
}

void MigrationEngine::attach(Flight& flight) {
  assert(flight.held != nullptr);
  hv::Host& dst = *flight.dest.host;
  (void)dst.swap_workload(flight.dest.vm_slot, std::move(flight.held));
  // The destination resumes at the purchased credit compensated (eq. 4)
  // for the destination's *current* P-state — attaching the raw credit on
  // a down-scaled host would shrink what the customer bought until the
  // next manager pass (up to a whole period of SLA violations).
  dst.scheduler().set_cap(flight.dest.vm_slot,
                          core::compensated_credit(flight.credit_pct, dst.cpu().ladder(),
                                                   dst.cpu().current_index()));
  dst.scheduler().import_credit(flight.dest.vm_slot, flight.record.credit_exported);
  flight.record.credit_imported = flight.record.credit_exported;

  const MigrationRecord record = flight.record;
  CompletionFn done = std::move(flight.done);
  const auto it = std::find_if(flights_.begin(), flights_.end(),
                               [&](const auto& f) { return f.get() == &flight; });
  assert(it != flights_.end());
  flights_.erase(it);
  completed_.push_back(record);
  if (done) done(record);
}

}  // namespace pas::cluster
