// Multi-host cluster: N simulated hosts advancing in lockstep on a shared
// virtual clock, with VMs that live-migrate between them at runtime.
//
// Synchronization model: hosts never interact *except* through cluster
// events (migration phases, manager ticks, SLA sampling), and every cluster
// event fires at an instant where all hosts have been advanced to exactly
// that time. The run loop therefore alternates
//
//     advance every host to the next cluster event -> fire the event
//
// which makes cross-host interaction conservative: within a segment each
// host simulates independently (its event-driven fast path may skip freely
// — the segment bound caps every skip), and anything that mutates another
// host's runnable set (a migration attach, overhead injected into a
// hypervisor agent) happens only at segment boundaries, followed by
// Host::notify_workload_changed. This is how the fast path "learns" about
// remote migrations without any cross-host speculation, and why a cluster
// run is byte-identical with the fast path on and off (the cluster fuzz
// test pins this for ~100 random scenarios).
//
// Because hosts share no mutable state within a segment (the contract
// hv::Host documents and enforces), the "advance every host" half of the
// loop is embarrassingly parallel: ExecutionPolicy::threads > 1 steps the
// hosts on a fixed-size common::ThreadPool, barriers, and then fires the
// cluster events serially on the coordinating thread in the queue's
// (time, insertion-sequence) order — the same order the serial driver
// uses. Each host's computation is a pure function of its own state and
// the segment bound, so every observable (traces, migration records, SLA
// counters, energy totals) is byte-identical to the serial engine at any
// thread count; tests/cluster/cluster_parallel_test.cpp sweeps
// threads ∈ {1, 2, 4, hardware} over the fuzz scenarios to pin this.
//
// Topology: slots are LAZY. A cluster VM owns a slot only on hosts it has
// actually touched — its home at add_vm, plus each migration/recovery
// destination, created on first use (slot 0 of every host is its
// hypervisor agent; guest slots follow in per-host arrival order). Exactly
// one of a VM's slots holds the guest's workload at any time — the others
// park an IdleGuest that is never runnable — so migration remains a
// workload-pointer + credit handoff and per-host dense VmIds stay stable
// once created. Lazy creation is what makes fleet scale feasible: at
// ~10k hosts / 100k VMs the old every-VM-on-every-host layout would mean
// a billion slots; lazily it is 100k plus one per migration. Slot lookups
// go through per-host and per-VM sorted maps (slot_on / host_slots), and
// topology_version() counts every residency/power/lifecycle change so
// planners can skip ticks where nothing moved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/hypervisor_agent.hpp"
#include "cluster/migration.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "hypervisor/host.hpp"
#include "metrics/cluster_energy_meter.hpp"
#include "metrics/sla_checker.hpp"
#include "platform/host_class.hpp"
#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"

namespace pas::fault {
class FaultInjector;
}  // namespace pas::fault

namespace pas::ctl {
class ControlPlane;
}  // namespace pas::ctl

namespace pas::cluster {

class ClusterManager;

/// Slot index of a cluster VM on every host: slot 0 is the hypervisor
/// agent, guests follow in creation order.
inline constexpr common::VmId kFirstGuestSlot = 1;

struct ClusterVmConfig {
  hv::VmConfig vm;  // name, purchased credit, priority
  /// Memory footprint — the consolidation planner's binding resource and
  /// the migration cost driver.
  double memory_mb = 512.0;
  /// Page-dirty rate while running (pre-copy convergence).
  double dirty_mb_per_s = 50.0;
};

/// How the "advance every host to the next cluster event" half of the run
/// loop executes. Purely a wall-clock knob: the parallel driver is
/// byte-identical to the serial one (see the file header).
struct ExecutionPolicy {
  /// Total executor threads stepping host segments: 1 = the serial driver
  /// (no pool, no worker threads); 0 = one executor per hardware thread;
  /// N > 1 = a pool of N-1 workers plus the coordinating thread.
  std::size_t threads = 1;
  /// Consecutive active-host indices each pool executor claims per shared-
  /// counter hit (common::ThreadPool::parallel_for grain). Scheduling only
  /// — which hosts advance, and to what state, never depends on it.
  std::size_t pool_grain = common::ThreadPool::kDefaultGrain;
};

/// Sparse-driver telemetry: of the host-segments each run_until cut, how
/// many were really dispatched (Host::run_until) vs bulk-skipped on a
/// quiescence certificate (Host::skip_idle_to). A consolidated fleet
/// should show active_fraction well below 1 — the engine-scaling claim
/// the cluster bench gates (docs/BENCHMARKS.md, engine block).
struct EngineStats {
  std::uint64_t segments = 0;    // advance_hosts calls
  std::uint64_t dispatches = 0;  // hosts stepped the honest way
  std::uint64_t bulk_skips = 0;  // hosts crossed in one skip
  [[nodiscard]] double active_fraction() const {
    const double total = static_cast<double>(dispatches + bulk_skips);
    return total > 0.0 ? static_cast<double>(dispatches) / total : 1.0;
  }
};

struct ClusterConfig {
  /// Template applied to every host (quantum, monitor window, trace stride,
  /// event_driven_fast_path, ...). With a uniform fleet it also supplies
  /// the ladder and power model; with `host_classes` those come per host
  /// from each class.
  hv::HostConfig host;
  ExecutionPolicy execution;
  /// Per-host platform classes: entry h defines host h's frequency ladder,
  /// power model, memory, planner capacity and NUMA layout. Non-empty
  /// defines the fleet — the constructor throws if host_count (other than
  /// host_classes.size()) or host_memory_mb is ALSO set: a lone scalar
  /// must not silently contradict mixed classes.
  std::vector<platform::HostClass> host_classes;
  /// Uniform-fleet shape, used when host_classes is empty: host_count
  /// clones of the `host` template with host_memory_mb of memory each.
  /// 0 = unset (host_count is then required only without classes;
  /// host_memory_mb falls back to 4096).
  std::size_t host_count = 0;
  double host_memory_mb = 0.0;
  MigrationConfig migration;
  /// Factory for each host's scheduler; defaults to the paper's credit
  /// scheduler when empty.
  std::function<std::unique_ptr<hv::Scheduler>()> make_scheduler;
  /// Credit/priority of each host's hypervisor agent (Dom0's migration
  /// helper; the paper runs Dom0 at the highest priority).
  common::Percent agent_credit = 10.0;
  int agent_priority = 1;
};

/// Lifecycle of a cluster VM under faults and external control. Healthy,
/// uncommanded clusters only ever see kRunning; kOrphaned/kLost exist
/// because hosts can crash, kStopped because operators can say stop.
enum class VmState : std::uint8_t {
  kRunning = 0,
  /// Its host crashed but the VM is restartable: the cluster holds its
  /// workload off-host until the manager's recovery path places it (or
  /// gives up and marks it lost).
  kOrphaned,
  /// Gone for good — crashed without restart, recovery abandoned, or lost
  /// mid-migration (MigrationOutcome::kLostSourceCrash).
  kLost,
  /// Administratively stopped (ctl stop_vm): the workload is held off-host
  /// like an orphan's, but deliberately — no SLA accrues and no recovery
  /// path touches it; only start_vm resumes it.
  kStopped,
  /// Arriving from another cluster (federation WAN migration, destination
  /// side): registered and slot-parked here, but the guest still runs on
  /// the source shard — no SLA samples, no planning, until
  /// complete_inbound flips it to kRunning at the link's attach.
  kInbound,
  /// Handed off to another cluster (federation WAN migration, source side,
  /// from the link's detach on). Terminal within THIS cluster — the guest
  /// lives on in the destination shard; no SLA, no planning, no recovery
  /// here.
  kDeparted,
};

/// One successful crash-recovery restart (for recovery-latency stats).
struct VmRecovery {
  GlobalVmId vm = 0;
  common::SimTime crashed_at{};
  common::SimTime restarted_at{};

  [[nodiscard]] common::SimTime latency() const { return restarted_at - crashed_at; }
};

/// Aggregate crash-recovery latency (orphan → running again) over a run's
/// VmRecovery records — the chaos bench's SLO block.
struct RecoveryStats {
  std::size_t count = 0;
  /// Lower-median nearest-rank p50 of the latencies; zero when count == 0.
  /// Deliberately NOT stats::percentile_sorted's linear interpolation: an
  /// interpolated median of an even-count sample is a latency that never
  /// happened, and SimTime truncation of it would not be byte-stable. The
  /// divergence (even n: nearest rank picks sorted[(n-1)/2], interpolation
  /// averages the middle pair) is pinned in tests/common/stats_test.cpp.
  common::SimTime p50{};
  common::SimTime max{};
  double mean_s = 0.0;
};

[[nodiscard]] RecoveryStats summarize_recoveries(const std::vector<VmRecovery>& recoveries);

/// Per-VM totals aggregated across every host the VM touched.
struct ClusterVmStats {
  common::SimTime total_busy{};
  common::Work total_work{};
  common::SimTime downtime{};
  std::uint32_t migrations = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a VM resident on `home`, creating its slot there (slots on other
  /// hosts appear lazily if it ever migrates). Must precede the first
  /// run_until.
  GlobalVmId add_vm(ClusterVmConfig config, std::unique_ptr<wl::Workload> workload,
                    HostId home);

  /// Installs the online reconfiguration manager (optional — a cluster
  /// without one is a static multi-host simulation). Must precede the
  /// first run_until.
  void install_manager(std::unique_ptr<ClusterManager> manager);

  /// Advances every host, in lockstep, to absolute time `until`.
  void run_until(common::SimTime until);

  /// Starts a live migration of `vm` to `to`. Returns false (and does
  /// nothing) if the VM is already in flight or `to` is its current home.
  /// Powers the destination on. Callable from manager ticks and between
  /// run_until calls.
  bool migrate(GlobalVmId vm, HostId to);

  /// Flips a host's power state (VOVO). Powering off excludes the host's
  /// energy from the cluster total; the host keeps following the clock so
  /// power-on is instantaneous. Refuses (returns false) to power off a host
  /// with running resident VMs or an in-flight migration endpoint, and to
  /// power a crashed host back on.
  bool set_powered(HostId host, bool on);

  // --- fault hooks (called by fault::FaultInjector events and tests) ---

  /// Fails host `host` at the current instant. Ordering within the crash:
  /// first every migration with the host as an endpoint aborts (so
  /// destination-crash rollbacks land on a still-live source), then every
  /// running resident is torn off the host — held as kOrphaned for the
  /// manager's recovery path when `restart_orphans`, destroyed as kLost
  /// otherwise — and finally the host powers off. Refuses (returns false)
  /// to crash an already-crashed host or the last live one; a crashed host
  /// keeps following the clock (idle, energy-gated off) so the fleet stays
  /// lockstep.
  bool crash_host(HostId host, bool restart_orphans);

  /// Restarts an orphaned VM on live host `to` (the manager's recovery
  /// path). The outage [crash, now] is SLA-charged as one fully violated
  /// window; the VM resumes at its purchased credit (compensated for the
  /// destination's P-state) with an empty credit balance — the crash burned
  /// whatever balance the slot held. Returns false unless the VM is
  /// orphaned and `to` is alive.
  bool restart_vm(GlobalVmId vm, HostId to);

  /// Abandons an orphaned VM (recovery retries exhausted): destroys the
  /// held workload, state becomes kLost. SLA windows stop accruing at the
  /// crash — a lost VM has no further accounting.
  void mark_lost(GlobalVmId vm);

  // --- external-control hooks (called by ctl::ControlPlane events) ---

  /// Administratively stops a running VM: its workload is swapped off the
  /// host and held (like an orphan's, but on purpose), the slot's cap drops
  /// to zero and its balance clears. No SLA accrues while stopped — the
  /// stop was requested, not suffered. Returns false unless the VM is
  /// kRunning and not in flight.
  bool stop_vm(GlobalVmId vm);

  /// Resumes a stopped VM on live host `to` (not necessarily where it
  /// stopped): same re-attach contract as a recovery restart — compensated
  /// purchased credit, empty balance — but with no SLA outage charge.
  /// Powers `to` on. Returns false unless the VM is kStopped and `to` is
  /// alive.
  bool start_vm(GlobalVmId vm, HostId to);

  /// Installs the external control plane (optional). Must precede the first
  /// run_until; the accepted task stream is armed onto the cluster event
  /// queue when the run starts, AFTER the fault injector's schedule — at
  /// equal times a fault outranks a command, so commands racing a crash
  /// observe the post-crash world deterministically.
  void install_control(std::unique_ptr<ctl::ControlPlane> control);
  [[nodiscard]] ctl::ControlPlane* control() { return control_.get(); }

  /// Schedules an arbitrary callback at a fixed queue position: hooks are
  /// armed at run start, after the injector and control plane, in call
  /// order. This is the test seam the control fuzz harness uses to
  /// hand-compile a command stream into raw cluster events occupying the
  /// exact (time, insertion-seq) positions ControlPlane::arm would give
  /// them. Must precede the first run_until.
  void schedule_at(common::SimTime at, std::function<void(common::SimTime)> fn);

  /// Aborts the in-flight migration of `vm` (see MigrationEngine::cancel).
  /// Returns false if none is in flight.
  bool abort_migration(GlobalVmId vm);

  /// Aborts the longest-in-flight migration — the deterministic choice the
  /// fault injector makes. Returns false if nothing is in flight.
  bool abort_oldest_migration();

  /// Changes the migration-link bandwidth now, re-planning in-flight
  /// pre-copies (see MigrationEngine::set_link_bandwidth).
  void set_link_bandwidth(double mb_per_s);
  [[nodiscard]] double link_bandwidth() const { return engine_->config().link_mb_per_s; }

  /// Installs the fault injector (optional). Must precede the first
  /// run_until; the injector's schedule is armed onto the cluster event
  /// queue when the run starts.
  void install_faults(std::unique_ptr<fault::FaultInjector> injector);

  // --- federation hooks (called by fed::Federation, at synced instants
  // --- between host segments — the same positions cluster events occupy) --

  /// Registers a VM arriving from another cluster mid-run: creates and
  /// parks its slot on `home` (an IdleGuest — the guest itself is still
  /// running on the source shard), registers SLA accounting, powers `home`
  /// on, state kInbound. The workload arrives through the federation
  /// link's attach; complete_inbound then flips it to kRunning. Returns
  /// the VM's id in THIS cluster. Throws on a bad or crashed host.
  GlobalVmId admit_inbound(ClusterVmConfig config, HostId home);

  /// Source-side handoff at the federation link's detach: the engine has
  /// already drained the slot (workload + credit are in transit), so this
  /// just marks the VM kDeparted and feeds the manager's dirty set.
  /// Throws std::logic_error unless the VM is kRunning.
  void mark_departed(GlobalVmId vm);

  /// Destination-side completion at the federation link's attach: the
  /// engine has re-attached workload + credit on the VM's slot; this flips
  /// kInbound -> kRunning, charges the WAN pause as a fully violated SLA
  /// window (same contract as an intra-cluster stop-and-copy), and counts
  /// the migration. Throws std::logic_error unless the VM is kInbound.
  void complete_inbound(GlobalVmId vm, common::SimTime downtime);

  /// Federation transfer lock: while set, the shard's own manager and
  /// control paths cannot migrate or stop the VM — the federation owns its
  /// placement until the cross-cluster flight resolves.
  void set_federation_lock(GlobalVmId vm, bool locked);
  [[nodiscard]] bool federation_locked(GlobalVmId vm) const {
    return fed_locked_.at(vm) != 0;
  }

  // --- accessors ---
  [[nodiscard]] common::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t vm_count() const { return vm_cfgs_.size(); }
  [[nodiscard]] hv::Host& host(HostId id) { return *hosts_.at(id); }
  [[nodiscard]] const hv::Host& host(HostId id) const { return *hosts_.at(id); }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  /// The platform class host `id` was built from. Always populated: a
  /// uniform fleet synthesizes one class per host from the template, so
  /// planners can consume per-host classes without caring how the fleet
  /// was configured.
  [[nodiscard]] const platform::HostClass& host_class(HostId id) const {
    return classes_.at(id);
  }
  /// Physical memory of host `id` (its class's) — the planner's binding
  /// resource.
  [[nodiscard]] double host_memory_mb(HostId id) const {
    return classes_.at(id).memory_mb;
  }
  [[nodiscard]] const ClusterVmConfig& vm_config(GlobalVmId vm) const {
    return vm_cfgs_.at(vm);
  }
  /// The VM's slot index on `host`. Throws if the VM never touched that
  /// host — check has_slot() first when unsure.
  [[nodiscard]] common::VmId slot_on(HostId host, GlobalVmId vm) const;
  [[nodiscard]] bool has_slot(HostId host, GlobalVmId vm) const;
  /// The VM's slot on its current residence (cached — the hot lookup).
  [[nodiscard]] common::VmId home_slot(GlobalVmId vm) const { return home_slot_.at(vm); }
  /// Every (vm, slot) pair on `host`, ascending by VM id — the
  /// deterministic order per-host sweeps (crash, DVFS re-cap, recovery
  /// reservation sums) walk.
  [[nodiscard]] const std::vector<std::pair<GlobalVmId, common::VmId>>& host_slots(
      HostId host) const {
    return host_slots_.at(host);
  }
  /// Bumped on every topology change: migration begin/done (any outcome),
  /// crash, restart, loss, and actual power flips. A planner that saw
  /// version v and converged can skip work until the version moves.
  [[nodiscard]] std::uint64_t topology_version() const { return topology_version_; }
  /// Host currently responsible for the VM (the source until a migration's
  /// attach completes).
  [[nodiscard]] HostId residence(GlobalVmId vm) const { return home_.at(vm); }
  [[nodiscard]] bool migrating(GlobalVmId vm) const { return engine_->in_flight(vm); }
  [[nodiscard]] VmState vm_state(GlobalVmId vm) const { return vm_state_.at(vm); }
  [[nodiscard]] bool crashed(HostId host) const { return crashed_.at(host) != 0; }
  [[nodiscard]] std::size_t crashed_count() const;
  /// VMs currently awaiting recovery, in ascending id order (the
  /// deterministic order the manager's recovery pass walks).
  [[nodiscard]] std::vector<GlobalVmId> orphaned_vms() const;
  [[nodiscard]] std::size_t running_vm_count() const;
  [[nodiscard]] std::size_t lost_vm_count() const;
  [[nodiscard]] const std::vector<VmRecovery>& recoveries() const { return recoveries_; }
  [[nodiscard]] ClusterManager* manager() { return manager_.get(); }
  [[nodiscard]] const ClusterManager* manager() const { return manager_.get(); }
  [[nodiscard]] const fault::FaultInjector* faults() const { return injector_.get(); }
  [[nodiscard]] bool powered_on(HostId host) const { return meter_.powered(host); }
  [[nodiscard]] std::size_t powered_on_count() const;
  /// True if the host holds running residents or an in-flight migration
  /// endpoint.
  [[nodiscard]] bool host_in_use(HostId host) const;
  [[nodiscard]] const MigrationEngine& engine() const { return *engine_; }
  [[nodiscard]] HypervisorAgent& agent(HostId host) { return *agents_.at(host); }

  // --- cluster-wide metrics ---
  /// VOVO-gated total energy (powered-off intervals excluded).
  [[nodiscard]] double energy_joules() const;
  /// One host's VOVO-gated energy — the per-class energy split in the
  /// cluster bench sums these by class.
  [[nodiscard]] double host_energy_joules(HostId host) const;
  /// Mean cluster power over the run so far.
  [[nodiscard]] double average_watts() const;
  [[nodiscard]] ClusterVmStats vm_stats(GlobalVmId vm) const;
  [[nodiscard]] const std::vector<MigrationRecord>& migrations() const {
    return engine_->completed();
  }
  /// Cluster-wide SLA accounting: per-VM absolute delivery vs purchased
  /// credit sampled every monitor window on the VM's resident host, plus
  /// every migration's stop-and-copy pause charged as a fully violated
  /// window (a paused VM delivers nothing, whatever it bought).
  [[nodiscard]] const metrics::SlaChecker& sla() const { return sla_; }

  /// Executors actually stepping host segments (1 = serial driver).
  [[nodiscard]] std::size_t execution_threads() const {
    return pool_ ? pool_->thread_count() : 1;
  }

  /// Sparse-driver dispatch counters for the run so far.
  [[nodiscard]] const EngineStats& engine_stats() const { return engine_stats_; }

 private:
  void install_periodic_tasks();
  /// Advances every host to `target` — the serial loop or the pooled
  /// fork-join, per ExecutionPolicy. Both leave identical host states.
  void advance_hosts(common::SimTime target);
  void sample_sla(common::SimTime now);
  void on_migration_done(const MigrationRecord& record);
  /// The VM's slot on `host`, creating it (an IdleGuest parked mid-run) on
  /// first touch.
  common::VmId ensure_slot(HostId host, GlobalVmId vm);
  void record_slot(HostId host, GlobalVmId vm, common::VmId slot);

  ClusterConfig cfg_;
  /// One class per host — cfg_.host_classes verbatim, or synthesized from
  /// the uniform template.
  std::vector<platform::HostClass> classes_;
  std::vector<std::unique_ptr<hv::Host>> hosts_;
  std::vector<HypervisorAgent*> agents_;  // slot 0 of each host, owned there
  std::unique_ptr<common::ThreadPool> pool_;  // null for the serial driver

  std::vector<ClusterVmConfig> vm_cfgs_;
  std::vector<HostId> home_;
  std::vector<common::VmId> home_slot_;  // slot on home_, cached
  /// Per host: (vm, slot) sorted by vm id. Per VM: (host, slot) sorted by
  /// host id. Two views of the same lazy-slot relation.
  std::vector<std::vector<std::pair<GlobalVmId, common::VmId>>> host_slots_;
  std::vector<std::vector<std::pair<HostId, common::VmId>>> vm_slots_;
  std::uint64_t topology_version_ = 0;
  std::vector<VmState> vm_state_;
  /// Workload of each kOrphaned or kStopped VM, held off-host until
  /// restart_vm / start_vm / mark_lost. held_since_ is the orphaning
  /// instant (drives the SLA outage charge at restart); administrative
  /// stops don't read it.
  std::vector<std::unique_ptr<wl::Workload>> held_wl_;
  std::vector<common::SimTime> held_since_;
  std::vector<std::uint8_t> crashed_;
  /// Per VM: nonzero while a federation cross-cluster flight owns it.
  std::vector<std::uint8_t> fed_locked_;
  std::vector<VmRecovery> recoveries_;

  sim::EventQueue events_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  std::unique_ptr<MigrationEngine> engine_;
  std::unique_ptr<ClusterManager> manager_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<ctl::ControlPlane> control_;
  /// Pre-start schedule_at hooks, armed (in order) after injector+control.
  std::vector<std::pair<common::SimTime, std::function<void(common::SimTime)>>> hooks_;

  metrics::ClusterEnergyMeter meter_;
  metrics::SlaChecker sla_;
  std::vector<common::SimTime> downtime_;
  std::vector<std::uint32_t> migration_count_;

  common::SimTime now_{};
  bool started_ = false;

  EngineStats engine_stats_;
  /// Scratch for advance_hosts' activity partition (hosts that must really
  /// run this segment); reused so the per-segment pass is allocation-free.
  std::vector<std::size_t> active_hosts_;
};

}  // namespace pas::cluster
