// Hypervisor service agent: the Dom0-side workload that absorbs management
// CPU costs the guests never see — today, the per-round page-push/receive
// work of live migration (§2.3's "consolidation is not free" made
// chargeable). The cluster layer injects work into the agent at migration
// round boundaries; the agent then contends for the CPU under the agent's
// credit like any other VM, so migration overhead shows up in busy time,
// energy, and (under contention) in what the guests get.
//
// Contract with the host's fast path: runnable() changes only through
// consume() or an external inject(). Injections happen at cluster sync
// points and are always followed by Host::notify_workload_changed, which
// forces the re-poll the hint below promises away.
#pragma once

#include "common/units.hpp"
#include "workload/workload.hpp"

namespace pas::cluster {

class HypervisorAgent final : public wl::Workload {
 public:
  void advance_to(common::SimTime now) override { now_ = now; }
  [[nodiscard]] bool runnable() const override { return pending_ > common::Work{}; }

  common::Work consume(common::SimTime /*now*/, common::Work budget) override {
    const common::Work done = budget < pending_ ? budget : pending_;
    pending_ -= done;
    total_ += done;
    return done;
  }

  [[nodiscard]] common::SimTime next_transition_time(common::SimTime /*now*/) override {
    // Self-transitions never happen; inject() callers notify the host.
    return wl::kNoTransition;
  }

  /// Queues `work` of hypervisor CPU (page copying, dirty tracking). The
  /// caller must follow up with Host::notify_workload_changed.
  void inject(common::Work work) { pending_ += work; }

  [[nodiscard]] common::Work pending() const { return pending_; }
  [[nodiscard]] common::Work total_performed() const { return total_; }

 private:
  common::SimTime now_{};
  common::Work pending_{};
  common::Work total_{};
};

}  // namespace pas::cluster
