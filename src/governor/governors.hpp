// The governor zoo (§2.2 / §3.2).
//
//  * PerformanceGovernor — pins the maximum frequency.
//  * PowersaveGovernor   — pins the minimum frequency.
//  * UserspaceGovernor   — frequency set externally (what the PAS
//                          controller uses under the hood).
//  * OndemandGovernor    — the stock aggressive policy: short sampling
//                          window, jump to max above the up-threshold,
//                          scale straight down to the lowest state that
//                          still fits. With a sampling window close to the
//                          scheduling quantum its per-window utilization is
//                          nearly bimodal, which reproduces the Fig. 3
//                          oscillation.
//  * StableOndemandGovernor — the paper's own governor (§5.4): "less
//                          aggressive and more stable, and consequently
//                          saves less energy". Slow sampling, three-window
//                          averaged input, immediate up-scaling but
//                          hysteretic down-scaling.
//  * ConservativeGovernor — steps one level at a time on thresholds.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "governor/governor.hpp"

namespace pas::gov {

class PerformanceGovernor final : public Governor {
 public:
  [[nodiscard]] std::string_view name() const override { return "performance"; }
  [[nodiscard]] common::SimTime period() const override { return common::seconds(1); }
  [[nodiscard]] std::size_t decide(const Sample&, const cpu::FrequencyLadder& ladder) override {
    return ladder.max_index();
  }
};

class PowersaveGovernor final : public Governor {
 public:
  [[nodiscard]] std::string_view name() const override { return "powersave"; }
  [[nodiscard]] common::SimTime period() const override { return common::seconds(1); }
  [[nodiscard]] std::size_t decide(const Sample&, const cpu::FrequencyLadder&) override {
    return 0;
  }
};

class UserspaceGovernor final : public Governor {
 public:
  explicit UserspaceGovernor(std::size_t initial_index = 0) : target_(initial_index) {}
  [[nodiscard]] std::string_view name() const override { return "userspace"; }
  [[nodiscard]] common::SimTime period() const override { return common::msec(100); }
  [[nodiscard]] std::size_t decide(const Sample&, const cpu::FrequencyLadder& ladder) override {
    return std::min(target_, ladder.max_index());
  }
  void set_target(std::size_t index) { target_ = index; }
  [[nodiscard]] std::size_t target() const { return target_; }

 private:
  std::size_t target_;
};

struct OndemandConfig {
  /// Stock ondemand samples fast — comparable to the scheduler tick.
  common::SimTime sampling_period = common::msec(20);
  /// Above this instantaneous utilization: jump to the maximum state.
  double up_threshold = 0.80;
};

class OndemandGovernor final : public Governor {
 public:
  explicit OndemandGovernor(OndemandConfig config = {});
  [[nodiscard]] std::string_view name() const override { return "ondemand"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.sampling_period; }
  [[nodiscard]] std::size_t decide(const Sample& sample,
                                   const cpu::FrequencyLadder& ladder) override;

 private:
  OndemandConfig cfg_;
};

struct StableOndemandConfig {
  common::SimTime sampling_period = common::seconds(1);
  /// Demand must fit within up_fill of the candidate state's capacity.
  double up_fill = 0.80;
  /// Step down only if demand fits within down_fill of the *lower* state.
  double down_fill = 0.70;
  /// ...for this many consecutive samples.
  int down_patience = 3;
};

class StableOndemandGovernor final : public Governor {
 public:
  explicit StableOndemandGovernor(StableOndemandConfig config = {});
  [[nodiscard]] std::string_view name() const override { return "stable-ondemand"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.sampling_period; }
  [[nodiscard]] std::size_t decide(const Sample& sample,
                                   const cpu::FrequencyLadder& ladder) override;

 private:
  StableOndemandConfig cfg_;
  int down_streak_ = 0;
};

struct ConservativeConfig {
  common::SimTime sampling_period = common::msec(100);
  double up_threshold = 0.80;
  double down_threshold = 0.30;
};

class ConservativeGovernor final : public Governor {
 public:
  explicit ConservativeGovernor(ConservativeConfig config = {});
  [[nodiscard]] std::string_view name() const override { return "conservative"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.sampling_period; }
  [[nodiscard]] std::size_t decide(const Sample& sample,
                                   const cpu::FrequencyLadder& ladder) override;

 private:
  ConservativeConfig cfg_;
};

/// Names every governor this library ships; factory for string-driven
/// configuration (benches, examples). Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] std::unique_ptr<Governor> make_governor(const std::string& name);

/// Absolute demand (fraction of the max-frequency processor) implied by a
/// utilization measured at state `index`: util * ratio * cf. Shared by the
/// scaling governors.
[[nodiscard]] double absolute_demand(double util, const cpu::FrequencyLadder& ladder,
                                     std::size_t index);

/// Lowest state whose capacity * fill covers `demand` (fraction); falls back
/// to the maximum state.
[[nodiscard]] std::size_t lowest_fitting_state(double demand, double fill,
                                               const cpu::FrequencyLadder& ladder);

}  // namespace pas::gov
