#include "governor/governors.hpp"

#include <memory>
#include <stdexcept>

namespace pas::gov {

double absolute_demand(double util, const cpu::FrequencyLadder& ladder, std::size_t index) {
  return util * ladder.capacity_pct(index) / 100.0;
}

std::size_t lowest_fitting_state(double demand, double fill, const cpu::FrequencyLadder& ladder) {
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder.capacity_pct(i) / 100.0 * fill >= demand) return i;
  }
  return ladder.max_index();
}

OndemandGovernor::OndemandGovernor(OndemandConfig config) : cfg_(config) {
  if (cfg_.sampling_period.us() <= 0)
    throw std::invalid_argument("OndemandGovernor: sampling period must be positive");
  if (cfg_.up_threshold <= 0.0 || cfg_.up_threshold > 1.0)
    throw std::invalid_argument("OndemandGovernor: up_threshold must be in (0,1]");
}

std::size_t OndemandGovernor::decide(const Sample& sample, const cpu::FrequencyLadder& ladder) {
  // Stock behaviour: any sample above the threshold jumps straight to the
  // top; anything below immediately re-fits downward. No memory at all —
  // that is what makes it "aggressive and unstable" (Fig. 3).
  if (sample.util > cfg_.up_threshold) return ladder.max_index();
  const double demand = absolute_demand(sample.util, ladder, sample.current_index);
  return lowest_fitting_state(demand, cfg_.up_threshold, ladder);
}

StableOndemandGovernor::StableOndemandGovernor(StableOndemandConfig config) : cfg_(config) {
  if (cfg_.sampling_period.us() <= 0)
    throw std::invalid_argument("StableOndemandGovernor: sampling period must be positive");
  if (cfg_.down_patience < 1)
    throw std::invalid_argument("StableOndemandGovernor: down_patience must be >= 1");
}

std::size_t StableOndemandGovernor::decide(const Sample& sample,
                                           const cpu::FrequencyLadder& ladder) {
  // Decisions use the three-window averaged load, not the instantaneous
  // sample; QoS-critical up-scaling is immediate, energy-saving
  // down-scaling waits for a consistent streak.
  const double demand = absolute_demand(sample.avg_util, ladder, sample.current_index);
  const std::size_t cur = sample.current_index;
  const std::size_t fit = lowest_fitting_state(demand, cfg_.up_fill, ladder);
  if (fit > cur) {
    down_streak_ = 0;
    return fit;  // scale up as far as needed, immediately
  }
  if (cur == 0) {
    down_streak_ = 0;
    return cur;
  }
  const bool lower_fits = ladder.capacity_pct(cur - 1) / 100.0 * cfg_.down_fill >= demand;
  if (lower_fits) {
    if (++down_streak_ >= cfg_.down_patience) {
      down_streak_ = 0;
      return cur - 1;  // one level at a time
    }
  } else {
    down_streak_ = 0;
  }
  return cur;
}

ConservativeGovernor::ConservativeGovernor(ConservativeConfig config) : cfg_(config) {
  if (cfg_.sampling_period.us() <= 0)
    throw std::invalid_argument("ConservativeGovernor: sampling period must be positive");
  if (cfg_.down_threshold >= cfg_.up_threshold)
    throw std::invalid_argument("ConservativeGovernor: thresholds must satisfy down < up");
}

std::size_t ConservativeGovernor::decide(const Sample& sample,
                                         const cpu::FrequencyLadder& ladder) {
  if (sample.util > cfg_.up_threshold && sample.current_index < ladder.max_index())
    return sample.current_index + 1;
  if (sample.util < cfg_.down_threshold && sample.current_index > 0)
    return sample.current_index - 1;
  return sample.current_index;
}

std::unique_ptr<Governor> make_governor(const std::string& name) {
  if (name == "performance") return std::make_unique<PerformanceGovernor>();
  if (name == "powersave") return std::make_unique<PowersaveGovernor>();
  if (name == "userspace") return std::make_unique<UserspaceGovernor>();
  if (name == "ondemand") return std::make_unique<OndemandGovernor>();
  if (name == "stable-ondemand") return std::make_unique<StableOndemandGovernor>();
  if (name == "conservative") return std::make_unique<ConservativeGovernor>();
  throw std::invalid_argument("make_governor: unknown governor '" + name + "'");
}

}  // namespace pas::gov
