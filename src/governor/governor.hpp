// DVFS governor interface (§2.2).
//
// A governor is a pure frequency policy: it observes utilization and picks a
// P-state. It does not know about VMs or credits — that blindness is
// precisely the incompatibility the paper demonstrates.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::gov {

/// Utilization snapshot handed to the governor at each sampling period.
struct Sample {
  common::SimTime now;
  /// Busy fraction of the CPU since the previous governor sample, in [0,1].
  double util = 0.0;
  /// Global load averaged over the monitor's smoothing depth (the paper's
  /// three-window average), as a fraction in [0,1].
  double avg_util = 0.0;
  /// Current P-state index.
  std::size_t current_index = 0;
};

class Governor {
 public:
  virtual ~Governor() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Sampling period.
  [[nodiscard]] virtual common::SimTime period() const = 0;

  /// Returns the desired P-state index for `sample`.
  [[nodiscard]] virtual std::size_t decide(const Sample& sample,
                                           const cpu::FrequencyLadder& ladder) = 0;
};

}  // namespace pas::gov
