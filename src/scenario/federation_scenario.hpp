// Federated hosting-center scenario: K hosting-cluster shards (each the
// classic build_hosting_cluster fleet) under one fed::Federation.
//
// Shard 0 is built from `base` UNCHANGED — with shards = 1 the federation
// run is byte-exact to the bare hosting cluster, the degradation contract
// the determinism suite pins. Further shards re-seed the tenant draws
// (seed + s·1000) so the fleets differ, and by default the VM population
// is SKEWED: a quarter of the tenants are moved from the last shard onto
// shard 0, handing the global planner a reserved-memory imbalance above
// its threshold — a federation bench that never crosses a link measures
// nothing.
#pragma once

#include <cstddef>
#include <memory>

#include "federation/federation.hpp"
#include "scenario/hosting_cluster.hpp"

namespace pas::scenario {

struct FederationScenarioConfig {
  /// Per-shard template; shard 0 uses it verbatim, shard s re-seeds with
  /// seed + s·1000 (and fleet_seed + s when a fleet seed is set).
  HostingClusterConfig base;
  std::size_t shards = 2;
  /// Move base.vms/4 tenants from the last shard to shard 0 (shards > 1
  /// only) so the planner has an imbalance to work on.
  bool skew = true;
  fed::FederationConfig federation;
};

[[nodiscard]] std::unique_ptr<fed::Federation> build_federation(
    const FederationScenarioConfig& config);

}  // namespace pas::scenario
