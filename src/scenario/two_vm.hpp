// The paper's execution profile (§5.3) as a reusable experiment harness.
//
// Two customer VMs on one core — V20 (20 % credit) and V70 (70 % credit) —
// plus Dom0 holding the remaining 10 % at the highest priority. Each VM has
// a three-phase inactive/active/inactive profile; the active load is either
// *exact* (100 % of the VM's credited capacity) or *thrashing* (exceeds
// it). Figures 2–10 are this scenario under different scheduler/governor/
// controller combinations; the integration tests assert the same phase
// summaries the benches print.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"
#include "metrics/trace_recorder.hpp"
#include "sched/scheduler_factory.hpp"

namespace pas::scenario {

enum class LoadKind { kExact, kThrashing };

enum class ControllerKind { kNone, kPas, kUserLevelCredit, kUserLevelDvfsCredit };

struct TwoVmConfig {
  sched::SchedulerKind scheduler = sched::SchedulerKind::kCredit;
  /// Governor name for gov::make_governor; empty = no governor (frequency
  /// pinned at max unless a controller moves it).
  std::string governor = "stable-ondemand";
  ControllerKind controller = ControllerKind::kNone;
  LoadKind load = LoadKind::kExact;

  cpu::FrequencyLadder ladder = cpu::FrequencyLadder::paper_default();

  // --- the time profile; defaults reproduce the paper's ~8000 s runs ---
  common::SimTime total = common::seconds(8000);
  common::SimTime v20_from = common::seconds(500);
  common::SimTime v20_until = common::seconds(6500);
  common::SimTime v70_from = common::seconds(2500);
  common::SimTime v70_until = common::seconds(5000);

  common::Percent v20_credit = 20.0;
  common::Percent v70_credit = 70.0;
  common::Percent dom0_credit = 10.0;
  /// Dom0's own CPU demand (absolute %) while any guest is active: backend
  /// I/O processing. Exact-load runs keep it small; thrashing web traffic
  /// loads the backend harder.
  common::Percent dom0_demand = 2.0;

  /// SEDF extra-time efficiency (see sched::SedfSchedulerConfig).
  double sedf_extra_efficiency = 1.0;

  common::SimTime trace_stride = common::seconds(10);
  std::uint64_t seed = 7;
};

/// Per-phase means over trace samples (transients near phase edges
/// excluded).
struct PhaseSummary {
  std::string name;
  common::SimTime from;
  common::SimTime until;
  double mean_freq_mhz = 0.0;
  double mean_global_pct = 0.0;
  double mean_absolute_pct = 0.0;
  double v20_global_pct = 0.0;
  double v70_global_pct = 0.0;
  double v20_absolute_pct = 0.0;
  double v70_absolute_pct = 0.0;
  double v20_credit_pct = 0.0;  // mean cap the scheduler held for V20
  double v70_credit_pct = 0.0;
};

struct TwoVmResult {
  metrics::TraceRecorder trace{0};
  /// Phases: warmup / V20-only (1) / both (2) / V20-only (3) / idle tail.
  std::vector<PhaseSummary> phases;
  double energy_joules = 0.0;
  double average_watts = 0.0;
  std::uint64_t freq_transitions = 0;
  /// SLA violation fraction per customer VM (saturated windows whose
  /// absolute load fell short of the purchased credit).
  double v20_sla_violation = 0.0;
  double v70_sla_violation = 0.0;
  /// Ids used in the trace.
  common::VmId dom0 = 0, v20 = 1, v70 = 2;
};

[[nodiscard]] TwoVmResult run_two_vm(const TwoVmConfig& config);

/// Renders the figure-style ASCII chart for a result: per-VM global or
/// absolute loads plus the frequency (scaled onto the same 0–100 axis).
[[nodiscard]] std::string render_loads_chart(const TwoVmResult& result, bool absolute,
                                             const std::string& title);

/// Renders the phase-summary table.
[[nodiscard]] std::string render_phase_table(const TwoVmResult& result);

}  // namespace pas::scenario
