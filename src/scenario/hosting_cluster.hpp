// Hosting-center cluster scenario: the multi-host successor of the two-VM
// profile — a fleet of hosts, dozens of tenants with day-cycle demand, an
// online consolidation manager migrating VMs at runtime.
//
// The mix follows the single-host throughput bench (web / thrashing /
// batch / reserved-idle tenants with staggered activity), but VMs start
// deliberately spread round-robin across every host: the interesting
// dynamics are the manager packing them (memory-bound, §2.3), powering
// hosts off, and scaling the survivors' frequency down. Used by
// bench_cluster_consolidation, example_hosting_center and the cluster
// tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/units.hpp"
#include "control/task.hpp"
#include "fault/fault.hpp"
#include "platform/host_class.hpp"
#include "workload/trace_replay.hpp"

namespace pas::scenario {

/// Fleet composition behind build_hosting_cluster when no explicit class
/// list is given.
enum class FleetPreset {
  kUniform,  // `hosts` copies of `uniform_class`
  kMixed,    // platform::mixed_fleet_classes(hosts, fleet_seed)
};

/// Tenant demand behind build_hosting_cluster.
enum class WorkloadPreset {
  kSynthetic,  // the historical web/hog/batch/idle mix
  kTrace,      // every VM replays a trace from `traces` (wl::TraceReplay)
};

struct HostingClusterConfig {
  std::size_t hosts = 8;
  std::size_t vms = 64;
  /// Shapes the activity pulses; runs shorter than this leave some tenants
  /// never-active (harmless), longer ones extend the idle tail.
  common::SimTime horizon = common::seconds(4000);
  std::uint64_t seed = 17;
  bool fast_path = true;
  /// Executor threads for host segments (cluster::ExecutionPolicy): 1 =
  /// serial driver, 0 = hardware concurrency. Wall-clock only — results
  /// are byte-identical at any value.
  std::size_t threads = 1;
  common::SimTime trace_stride = common::seconds(10);
  /// Explicit per-host classes; non-empty overrides `fleet`, and `hosts`
  /// must agree with its size (build_hosting_cluster throws otherwise —
  /// the VM round-robin spreads over `hosts`, so a mismatch would
  /// mis-home tenants).
  std::vector<platform::HostClass> host_classes;
  FleetPreset fleet = FleetPreset::kUniform;
  /// Class-mixing seed for FleetPreset::kMixed: 0 = the round-robin
  /// catalog preset, anything else draws per-host classes from an Rng.
  std::uint64_t fleet_seed = 0;
  /// The class behind FleetPreset::kUniform. Memory lives here (it used to
  /// be a lone host_memory_mb scalar, which could silently contradict a
  /// mixed class list); the default keeps the historical 8 GB hosts with
  /// the paper's ladder and power model.
  platform::HostClass uniform_class = default_uniform_class();
  /// Tenant demand model. kTrace assigns each VM a trace from `traces`
  /// (which must then be non-empty), drawn deterministically from
  /// `fleet_seed` — the same run-shaping seed the mixed fleet uses, so one
  /// (preset, seed) pair names a reproducible scenario. Per-VM credit is
  /// sized from the trace's peak demand (25 % headroom) and memory from
  /// its peak footprint when the trace records one.
  WorkloadPreset workload = WorkloadPreset::kSynthetic;
  /// Trace set for WorkloadPreset::kTrace (wl::Trace::load_dir loads a
  /// directory of CSVs in deterministic filename order).
  std::vector<wl::Trace> traces;
  /// Manager configuration; install_manager=false gives the static spread
  /// baseline (no consolidation, no DVFS).
  cluster::ClusterManagerConfig manager;
  bool install_manager = true;
  /// Chaos: 0 = no faults (every historical seed reproduces byte-
  /// identically). Non-zero draws a fault schedule from
  /// fault::draw_fault_plan(chaos, chaos_seed, hosts, horizon) — a
  /// dedicated substream-derived RNG, so the scenario's own draws
  /// (workloads, fleet, traces) are untouched by any chaos_seed value.
  std::uint64_t chaos_seed = 0;
  fault::FaultConfig chaos;
  /// External command stream (ctl::parse_tasks output): non-empty installs
  /// a ctl::ControlPlane over these tasks. Strictly additive — an empty
  /// stream installs nothing and every historical scenario reproduces
  /// byte-identically.
  std::vector<ctl::Task> commands;

  [[nodiscard]] static platform::HostClass default_uniform_class() {
    platform::HostClass c;
    c.name = "host";
    c.memory_mb = 8192.0;
    return c;
  }
};

[[nodiscard]] std::unique_ptr<cluster::Cluster> build_hosting_cluster(
    const HostingClusterConfig& config);

}  // namespace pas::scenario
