// Hosting-center cluster scenario: the multi-host successor of the two-VM
// profile — a fleet of hosts, dozens of tenants with day-cycle demand, an
// online consolidation manager migrating VMs at runtime.
//
// The mix follows the single-host throughput bench (web / thrashing /
// batch / reserved-idle tenants with staggered activity), but VMs start
// deliberately spread round-robin across every host: the interesting
// dynamics are the manager packing them (memory-bound, §2.3), powering
// hosts off, and scaling the survivors' frequency down. Used by
// bench_cluster_consolidation, example_hosting_center and the cluster
// tests.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/units.hpp"

namespace pas::scenario {

struct HostingClusterConfig {
  std::size_t hosts = 8;
  std::size_t vms = 64;
  /// Shapes the activity pulses; runs shorter than this leave some tenants
  /// never-active (harmless), longer ones extend the idle tail.
  common::SimTime horizon = common::seconds(4000);
  std::uint64_t seed = 17;
  bool fast_path = true;
  /// Executor threads for host segments (cluster::ExecutionPolicy): 1 =
  /// serial driver, 0 = hardware concurrency. Wall-clock only — results
  /// are byte-identical at any value.
  std::size_t threads = 1;
  common::SimTime trace_stride = common::seconds(10);
  double host_memory_mb = 8192.0;
  /// Manager configuration; install_manager=false gives the static spread
  /// baseline (no consolidation, no DVFS).
  cluster::ClusterManagerConfig manager;
  bool install_manager = true;
};

[[nodiscard]] std::unique_ptr<cluster::Cluster> build_hosting_cluster(
    const HostingClusterConfig& config);

}  // namespace pas::scenario
