#include "scenario/hosting_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/random.hpp"
#include "control/control_plane.hpp"
#include "workload/load_profile.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::scenario {

namespace {

/// Manager + chaos + control install, shared by both workload presets.
/// Chaos and commands are strictly additive: chaos_seed == 0 / an empty
/// command stream installs nothing, so every historical (seed → scenario)
/// mapping stays byte-identical.
void finish_cluster(cluster::Cluster& cluster, const HostingClusterConfig& config) {
  if (config.install_manager)
    cluster.install_manager(std::make_unique<cluster::ClusterManager>(config.manager));
  if (config.chaos_seed != 0) {
    cluster.install_faults(std::make_unique<fault::FaultInjector>(fault::draw_fault_plan(
        config.chaos, config.chaos_seed, config.hosts, config.horizon)));
  }
  if (!config.commands.empty())
    cluster.install_control(std::make_unique<ctl::ControlPlane>(config.commands));
}

}  // namespace

std::unique_ptr<cluster::Cluster> build_hosting_cluster(const HostingClusterConfig& config) {
  cluster::ClusterConfig cc;
  cc.host.trace_stride = config.trace_stride;
  cc.host.event_driven_fast_path = config.fast_path;
  cc.execution.threads = config.threads;
  // The fleet is always a per-host class list: explicit, mixed from the
  // platform catalog, or `hosts` clones of the uniform class.
  if (!config.host_classes.empty()) {
    cc.host_classes = config.host_classes;
  } else if (config.fleet == FleetPreset::kMixed) {
    cc.host_classes = platform::mixed_fleet_classes(config.hosts, config.fleet_seed);
  } else {
    cc.host_classes = platform::uniform_fleet_classes(config.hosts, config.uniform_class);
  }
  if (cc.host_classes.size() != config.hosts)
    throw std::invalid_argument(
        "build_hosting_cluster: hosts disagrees with host_classes.size()");
  auto cluster = std::make_unique<cluster::Cluster>(std::move(cc));

  const auto horizon_s = config.horizon.us() / 1'000'000;
  const auto hosts = static_cast<cluster::HostId>(config.hosts);

  if (config.workload == WorkloadPreset::kTrace) {
    if (config.traces.empty())
      throw std::invalid_argument(
          "build_hosting_cluster: WorkloadPreset::kTrace needs a non-empty trace set");
    // Per-VM trace assignment is a pure function of (fleet_seed, i): the
    // same seed that shapes a mixed fleet names the replay cast.
    common::Rng rng{config.fleet_seed * 0x9e3779b97f4a7c15ULL + 0x7472616365ULL};
    for (std::size_t i = 0; i < config.vms; ++i) {
      const wl::Trace& trace = config.traces[rng.next_below(config.traces.size())];
      cluster::ClusterVmConfig vc;
      vc.vm.name = "trace" + std::to_string(i) + "_" + trace.name();
      // Credit covers the trace's peak with 25 % headroom so a healthy
      // fleet serves every interval; floors/ceilings keep degenerate
      // traces schedulable.
      vc.vm.credit = std::clamp(std::ceil(trace.peak_demand_pct() * 1.25), 2.0, 95.0);
      vc.memory_mb = trace.has_memory() ? trace.peak_memory_mb()
                                        : 256.0 * static_cast<double>(1 + i % 4);
      vc.dirty_mb_per_s = 10.0 + 15.0 * static_cast<double>(i % 4);
      cluster->add_vm(vc, std::make_unique<wl::TraceReplay>(trace),
                      static_cast<cluster::HostId>(i % hosts));
    }
    finish_cluster(*cluster, config);
    return cluster;
  }

  // Tenant mix per block of 16 VMs: 4 web, 3 thrashing hogs, 3 batch jobs,
  // 6 reserved-but-idle — the single-host bench's proportions. Every VM
  // starts on host (i % hosts): maximally spread, so consolidation has the
  // whole distance to cover.
  for (std::size_t i = 0; i < config.vms; ++i) {
    const std::size_t kind = i % 16;
    const auto home = static_cast<cluster::HostId>(i % hosts);
    cluster::ClusterVmConfig vc;
    std::unique_ptr<wl::Workload> workload;
    if (kind < 4) {  // web tenant: request pulse over 1/8 of the day
      vc.vm.name = "web" + std::to_string(i);
      vc.vm.credit = 4.0;
      vc.memory_mb = 512.0;
      vc.dirty_mb_per_s = 30.0;
      wl::WebAppConfig wc;
      wc.queue_capacity = 500;
      wc.seed = config.seed * 1000 + i;
      const double rate = wl::WebApp::rate_for_demand(vc.vm.credit, wc.request_cost);
      const auto from = common::seconds(horizon_s * (i % 32) / 64);
      const auto until = common::seconds(horizon_s * (i % 32) / 64 + horizon_s / 8);
      workload = std::make_unique<wl::WebApp>(wl::LoadProfile::pulse(from, until, rate), wc);
    } else if (kind < 7) {  // thrashing hog under its cap
      vc.vm.name = "hog" + std::to_string(i);
      vc.vm.credit = 3.0;
      vc.memory_mb = 768.0;
      vc.dirty_mb_per_s = 60.0;
      const auto from = common::seconds(horizon_s / 8 + horizon_s * (i % 24) / 48);
      const auto until = common::seconds(horizon_s / 8 + horizon_s * (i % 24) / 48 +
                                         horizon_s / 12);
      workload = std::make_unique<wl::GatedBusyLoop>(wl::LoadProfile::pulse(from, until, 1.0));
    } else if (kind < 10) {  // batch pi job, staggered start
      vc.vm.name = "batch" + std::to_string(i);
      vc.vm.credit = 5.0;
      vc.memory_mb = 1024.0;
      vc.dirty_mb_per_s = 40.0;
      workload = std::make_unique<wl::PiApp>(
          common::mf_seconds(static_cast<double>(horizon_s) / 400.0),
          common::seconds(horizon_s * (i % 16) / 16));
    } else {  // reserved but idle
      vc.vm.name = "idle" + std::to_string(i);
      vc.vm.credit = 2.0;
      vc.memory_mb = 256.0;
      vc.dirty_mb_per_s = 5.0;
      workload = std::make_unique<wl::IdleGuest>();
    }
    cluster->add_vm(std::move(vc), std::move(workload), home);
  }

  finish_cluster(*cluster, config);
  return cluster;
}

}  // namespace pas::scenario
