#include "scenario/federation_scenario.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace pas::scenario {

std::unique_ptr<fed::Federation> build_federation(
    const FederationScenarioConfig& config) {
  if (config.shards == 0)
    throw std::invalid_argument("build_federation: need at least one shard");

  const std::size_t extra =
      (config.shards > 1 && config.skew) ? config.base.vms / 4 : 0;
  if (extra > config.base.vms)
    throw std::invalid_argument("build_federation: skew exceeds shard population");

  std::vector<std::unique_ptr<cluster::Cluster>> shards;
  shards.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    HostingClusterConfig shard = config.base;
    // s = 0 keeps `base` verbatim — the K = 1 byte-exactness contract.
    shard.seed = config.base.seed + s * 1000;
    if (config.base.fleet_seed != 0) shard.fleet_seed = config.base.fleet_seed + s;
    if (s == 0) shard.vms += extra;
    if (s + 1 == config.shards && s != 0) shard.vms -= extra;
    shards.push_back(build_hosting_cluster(shard));
  }
  return std::make_unique<fed::Federation>(config.federation, std::move(shards));
}

}  // namespace pas::scenario
