#include "scenario/two_vm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/ascii_chart.hpp"
#include "common/stats.hpp"
#include "core/pas_controller.hpp"
#include "core/user_level_managers.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "metrics/sla_checker.hpp"
#include "sched/credit2_scheduler.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::scenario {

namespace {

std::unique_ptr<hv::Scheduler> build_scheduler(const TwoVmConfig& cfg) {
  switch (cfg.scheduler) {
    case sched::SchedulerKind::kCredit:
      return std::make_unique<sched::CreditScheduler>();
    case sched::SchedulerKind::kSedf: {
      sched::SedfSchedulerConfig sc;
      sc.extra_work_efficiency = cfg.sedf_extra_efficiency;
      return std::make_unique<sched::SedfScheduler>(sc);
    }
    case sched::SchedulerKind::kCredit2:
      return std::make_unique<sched::Credit2Scheduler>();
  }
  throw std::invalid_argument("build_scheduler: bad kind");
}

std::unique_ptr<hv::Controller> build_controller(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kNone:
      return nullptr;
    case ControllerKind::kPas:
      return std::make_unique<core::PasController>();
    case ControllerKind::kUserLevelCredit:
      return std::make_unique<core::UserLevelCreditManager>();
    case ControllerKind::kUserLevelDvfsCredit:
      return std::make_unique<core::UserLevelDvfsCreditManager>();
  }
  throw std::invalid_argument("build_controller: bad kind");
}

std::unique_ptr<wl::Workload> build_guest_load(const TwoVmConfig& cfg, common::SimTime from,
                                               common::SimTime until, common::Percent credit,
                                               std::uint64_t seed) {
  if (cfg.load == LoadKind::kThrashing) {
    // Demand exceeding the VM capacity with no queue bound: a CPU hog gated
    // by the activity window.
    return std::make_unique<wl::GatedBusyLoop>(wl::LoadProfile::pulse(from, until, 1.0));
  }
  // Exact load: the injector generates 100 % of the VM's credited capacity
  // at maximum frequency, and no more. The queue is bounded to a few
  // seconds of work — httperf connections time out, they do not pile up
  // forever — so the load drops shortly after the active phase ends.
  wl::WebAppConfig wc;
  wc.queue_capacity = 500;
  wc.seed = seed;
  const double rate = wl::WebApp::rate_for_demand(credit, wc.request_cost);
  return std::make_unique<wl::WebApp>(wl::LoadProfile::pulse(from, until, rate), wc);
}

struct SeriesMean {
  common::RunningStats freq, global, absolute, v20g, v70g, v20a, v70a, v20c, v70c;
};

}  // namespace

TwoVmResult run_two_vm(const TwoVmConfig& cfg) {
  if (!(cfg.v20_from < cfg.v70_from && cfg.v70_from < cfg.v70_until &&
        cfg.v70_until < cfg.v20_until && cfg.v20_until < cfg.total))
    throw std::invalid_argument("run_two_vm: profile phases must nest as in the paper");

  hv::HostConfig hc;
  hc.ladder = cfg.ladder;
  hc.trace_stride = cfg.trace_stride;
  hv::Host host{hc, build_scheduler(cfg)};
  if (!cfg.governor.empty()) host.set_governor(gov::make_governor(cfg.governor));
  if (auto ctrl = build_controller(cfg.controller)) host.set_controller(std::move(ctrl));

  // Dom0: highest priority, light backend demand while any guest is active.
  {
    wl::WebAppConfig wc;
    wc.queue_capacity = 500;
    wc.seed = cfg.seed * 1000 + 1;
    const double rate = wl::WebApp::rate_for_demand(cfg.dom0_demand, wc.request_cost);
    hv::VmConfig dom0;
    dom0.name = "Dom0";
    dom0.credit = cfg.dom0_credit;
    dom0.priority = 1;
    host.add_vm(dom0, std::make_unique<wl::WebApp>(
                          wl::LoadProfile::pulse(cfg.v20_from, cfg.v20_until, rate), wc));
  }
  {
    hv::VmConfig v20;
    v20.name = "V20";
    v20.credit = cfg.v20_credit;
    host.add_vm(v20, build_guest_load(cfg, cfg.v20_from, cfg.v20_until, cfg.v20_credit,
                                      cfg.seed * 1000 + 2));
  }
  {
    hv::VmConfig v70;
    v70.name = "V70";
    v70.credit = cfg.v70_credit;
    host.add_vm(v70, build_guest_load(cfg, cfg.v70_from, cfg.v70_until, cfg.v70_credit,
                                      cfg.seed * 1000 + 3));
  }

  host.run_until(cfg.total);

  TwoVmResult res;
  res.trace = host.trace();
  res.energy_joules = host.energy().joules();
  res.average_watts = host.energy().average_watts();
  res.freq_transitions = host.cpufreq().transition_count();

  // --- phase summaries ---
  struct PhaseDef {
    const char* name;
    common::SimTime from, until;
  };
  const PhaseDef defs[] = {
      {"warmup (idle)", common::SimTime{}, cfg.v20_from},
      {"phase1 V20-only", cfg.v20_from, cfg.v70_from},
      {"phase2 V20+V70", cfg.v70_from, cfg.v70_until},
      {"phase3 V20-only", cfg.v70_until, cfg.v20_until},
      {"tail (idle)", cfg.v20_until, cfg.total},
  };
  for (const auto& d : defs) {
    // Exclude transients: skip 10 % of the phase at each edge (min 30 s).
    const auto span = d.until - d.from;
    const common::SimTime margin =
        std::max(common::seconds(30), common::usec(span.us() / 10));
    const common::SimTime lo = d.from + margin;
    const common::SimTime hi = d.until - margin;
    SeriesMean m;
    for (const auto& s : res.trace.samples()) {
      if (s.t < lo || s.t >= hi) continue;
      m.freq.add(s.freq_mhz);
      m.global.add(s.global_load_pct);
      m.absolute.add(s.absolute_load_pct);
      m.v20g.add(s.vm_global_pct[res.v20]);
      m.v70g.add(s.vm_global_pct[res.v70]);
      m.v20a.add(s.vm_absolute_pct[res.v20]);
      m.v70a.add(s.vm_absolute_pct[res.v70]);
      m.v20c.add(s.vm_credit_pct[res.v20]);
      m.v70c.add(s.vm_credit_pct[res.v70]);
    }
    PhaseSummary p;
    p.name = d.name;
    p.from = d.from;
    p.until = d.until;
    p.mean_freq_mhz = m.freq.mean();
    p.mean_global_pct = m.global.mean();
    p.mean_absolute_pct = m.absolute.mean();
    p.v20_global_pct = m.v20g.mean();
    p.v70_global_pct = m.v70g.mean();
    p.v20_absolute_pct = m.v20a.mean();
    p.v70_absolute_pct = m.v70a.mean();
    p.v20_credit_pct = m.v20c.mean();
    p.v70_credit_pct = m.v70c.mean();
    res.phases.push_back(p);
  }

  // --- SLA accounting over trace samples ---
  metrics::SlaChecker sla;
  sla.register_vm(res.dom0, cfg.dom0_credit);
  sla.register_vm(res.v20, cfg.v20_credit);
  sla.register_vm(res.v70, cfg.v70_credit);
  for (const auto& s : res.trace.samples()) {
    for (common::VmId vm : {res.v20, res.v70}) {
      sla.record_window(vm, cfg.trace_stride, s.vm_absolute_pct[vm],
                        s.vm_saturated[vm] > 0.5);
    }
  }
  res.v20_sla_violation = sla.violation_fraction(res.v20);
  res.v70_sla_violation = sla.violation_fraction(res.v70);
  return res;
}

std::string render_loads_chart(const TwoVmResult& result, bool absolute,
                               const std::string& title) {
  const auto freq = result.trace.series_freq();
  double fmax = 1.0;
  for (double f : freq) fmax = std::max(fmax, f);
  std::vector<double> freq_pct;
  freq_pct.reserve(freq.size());
  for (double f : freq) freq_pct.push_back(f / fmax * 100.0);

  std::vector<common::ChartSeries> series;
  series.push_back({"freq(%fmax)", '-', std::move(freq_pct)});
  series.push_back({"V70", '7', absolute ? result.trace.series_vm_absolute(result.v70)
                                         : result.trace.series_vm_global(result.v70)});
  series.push_back({"V20", '2', absolute ? result.trace.series_vm_absolute(result.v20)
                                         : result.trace.series_vm_global(result.v20)});

  common::ChartOptions opt;
  opt.title = title;
  opt.y_label = absolute ? "absolute load %" : "global load %";
  opt.x_label = "time -> (full run)";
  opt.y_min = 0.0;
  opt.y_max = 100.0;
  return common::render_chart(series, opt);
}

std::string render_phase_table(const TwoVmResult& result) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-18s %9s %8s %8s %8s %8s %8s %8s\n", "phase", "freq MHz",
                "V20 glb", "V70 glb", "V20 abs", "V70 abs", "V20 cap", "V70 cap");
  out += buf;
  for (const auto& p : result.phases) {
    std::snprintf(buf, sizeof(buf), "  %-18s %9.0f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                  p.name.c_str(), p.mean_freq_mhz, p.v20_global_pct, p.v70_global_pct,
                  p.v20_absolute_pct, p.v70_absolute_pct, p.v20_credit_pct, p.v70_credit_pct);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  energy: %.0f J (avg %.1f W)   freq transitions: %llu   "
                "SLA violations: V20 %.1f%%  V70 %.1f%%\n",
                result.energy_joules, result.average_watts,
                static_cast<unsigned long long>(result.freq_transitions),
                100.0 * result.v20_sla_violation, 100.0 * result.v70_sla_violation);
  out += buf;
  return out;
}

}  // namespace pas::scenario
