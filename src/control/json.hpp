// Minimal strict JSON for the control plane's task protocol.
//
// The external command stream (ctl::parse_tasks) and the result log are
// JSON; nothing else in the simulator speaks it, and the container bakes in
// no JSON library, so this is a self-contained recursive-descent parser in
// the common::CsvTable hardening idiom: every rejection throws
// std::runtime_error prefixed `origin:line:` so a bad task in a 10k-line
// command log is findable, and every parsed value remembers the line it
// started on so *semantic* validation one layer up (unknown task kind, bad
// VM id) can point at the offending task too.
//
// Strictness over convenience, deliberately: duplicate object keys,
// trailing commas, comments, NaN/Inf literals, unescaped control
// characters and trailing garbage after the top-level value are all
// rejected. A command stream is config-as-input — anything the grammar
// tolerates silently becomes behavior someone depends on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pas::ctl::json {

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// One parsed JSON value. Objects preserve member order (the task protocol
/// never depends on it, but error messages walking members in input order
/// read better) and reject duplicate keys at parse time.
class Value {
 public:
  [[nodiscard]] Kind kind() const { return kind_; }
  /// 1-based physical line this value started on (for semantic errors).
  [[nodiscard]] std::size_t line() const { return line_; }

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Member lookup; nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  std::size_t line_ = 1;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one complete JSON document. `origin` names the source in error
/// messages (a file path, or "<memory>"). Throws std::runtime_error with an
/// `origin:line:` prefix on any syntax violation, including trailing
/// non-whitespace after the document.
[[nodiscard]] Value parse(std::string_view text, const std::string& origin = "<memory>");

/// Escapes a string for embedding in JSON output (quotes, backslashes,
/// control characters). Returns the escaped body WITHOUT surrounding quotes.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace pas::ctl::json
