#include "control/communicator.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pas::ctl {

FileCommunicator::FileCommunicator(std::string task_path, std::string result_path)
    : task_path_(std::move(task_path)), result_path_(std::move(result_path)) {}

std::string FileCommunicator::receive_tasks() {
  // ifstream blocks on a FIFO until a writer connects, then reads to EOF —
  // exactly the pull-once contract the Communicator interface documents.
  std::ifstream in(task_path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("FileCommunicator: cannot open " + task_path_);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void FileCommunicator::publish_results(const std::string& log) {
  if (result_path_.empty()) {
    std::fwrite(log.data(), 1, log.size(), stdout);
    return;
  }
  std::ofstream out(result_path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("FileCommunicator: cannot write " + result_path_);
  }
  out << log;
}

}  // namespace pas::ctl
