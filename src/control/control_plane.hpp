// ControlPlane: compiles an accepted task stream into ordinary cluster
// events and publishes per-task results.
//
// Determinism is inherited, not re-invented — the PR 6 fault-injection
// trick: Cluster::run_until calls arm() exactly once when the run starts,
// scheduling every task onto the SAME (time, insertion-seq) ordered event
// queue that manager ticks, SLA samples and migration phases ride. A
// command therefore lands at a fixed queue position in every engine, so
// fast-path, reference and parallel runs replay the stream identically and
// the result log — which only depends on cluster state at those fixed
// instants — serializes byte-identically too.
//
// Execution semantics at fire time, per kind (reasons are published in the
// result log; see task.hpp for TaskStatus):
//   migrate            — superseded if the VM is orphaned/lost or the
//                        destination crashed; rejected if the VM is stopped,
//                        already resident, already in flight, the manager is
//                        browned out, or the period's migration budget is
//                        exhausted (external commands draw from the SAME
//                        per-tick budget as planner-issued migrations —
//                        ClusterManager::admit_external_migration).
//   stop_vm / start_vm — administrative lifecycle: stop holds the workload
//                        off-host (no SLA accrual — the customer asked),
//                        start resumes it on a live host.
//   crash_host         — drill traffic; superseded if already crashed,
//                        rejected on the last live host.
//   restart_vm         — an external recovery decision for an orphaned VM;
//                        superseded if the VM was never orphaned (lost, or
//                        the manager's own recovery won the race).
//   set_link_bandwidth — applied unconditionally (validated at parse).
//   annotate           — no-op; the note passes through to the result log.
//
// A crash that fires at the same instant as a command sorts FIRST: the
// fault injector arms before the control plane (Cluster::run_until), so its
// events hold earlier insertion-seqs at equal times. A command racing a
// chaos crash therefore observes the post-crash world — deterministically,
// in every engine — and resolves to kSuperseded (the fuzz equivalence test
// pins this).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "control/communicator.hpp"
#include "control/task.hpp"

namespace pas::sim {
class EventQueue;
}  // namespace pas::sim

namespace pas::cluster {
class Cluster;
}  // namespace pas::cluster

namespace pas::ctl {

class ControlPlane {
 public:
  /// Scripted stream (tests, bench, scenario wiring).
  explicit ControlPlane(std::vector<Task> tasks);

  /// Pulls the stream through a Communicator: receive_tasks() is parsed
  /// strictly against `dims` (throws origin:line on malformed input), and
  /// publish() later pushes the result log back. The communicator is owned.
  ControlPlane(std::unique_ptr<Communicator> comm, FleetDims dims);

  /// Schedules every task onto `events` against `cluster`. Called by
  /// Cluster::run_until exactly once, when the run starts; the plane must
  /// outlive the run (the cluster owns it).
  void arm(cluster::Cluster& cluster, sim::EventQueue& events);

  /// Injects one task after the run has started (tools/pas_ctl's REPL
  /// path). Fires at task.at, or immediately at the next event boundary if
  /// that is already in the past. Returns false before arm().
  bool submit(const Task& task);

  /// Publishes the serialized result log through the communicator (no-op
  /// for the scripted constructor).
  void publish();

  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  /// Fired-task outcomes in fire order (time, then insertion-seq).
  [[nodiscard]] const std::vector<TaskResult>& results() const { return results_; }
  /// The deterministic result log (serialize_results over results()).
  [[nodiscard]] std::string result_log() const { return serialize_results(results_); }

  [[nodiscard]] std::size_t accepted() const { return count(TaskStatus::kOk); }
  [[nodiscard]] std::size_t rejected() const { return count(TaskStatus::kRejected); }
  [[nodiscard]] std::size_t superseded() const { return count(TaskStatus::kSuperseded); }

 private:
  void apply(const Task& task, common::SimTime now);
  [[nodiscard]] std::size_t count(TaskStatus status) const;

  std::unique_ptr<Communicator> comm_;
  std::vector<Task> tasks_;
  /// REPL-submitted tasks; heap-pinned so the scheduled lambdas' pointers
  /// survive growth (tasks_ itself is frozen once arm() runs).
  std::vector<std::unique_ptr<Task>> submitted_;
  std::vector<TaskResult> results_;
  cluster::Cluster* cluster_ = nullptr;  // set at arm
  sim::EventQueue* events_ = nullptr;    // set at arm (for submit)
};

}  // namespace pas::ctl
