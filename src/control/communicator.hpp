// Transport abstraction for the control plane, following the shape of
// RWTH-OS/migration-framework's Communicator (there MQTT; here broker-free).
//
// A Communicator is a one-shot exchange: the driver pulls the whole command
// stream once before the run starts (receive_tasks), and pushes the result
// log once after it ends (publish_results). Pulling everything up front is
// what keeps the determinism contract trivial — the stream is fixed before
// the first event fires, so commands occupy fixed (time, insertion-seq)
// queue positions regardless of transport latency. Real orchestrator
// traffic arrives mid-run through tools/pas_ctl's REPL path
// (ControlPlane::submit), which queues against the *next* run_until
// boundary and is equally deterministic given the same submission points.
//
// Implementations:
//  * VectorCommunicator — in-process scripted text; tests and the bench.
//  * FileCommunicator   — reads a file (or a named pipe, to EOF) and writes
//                         the result log next to it; tools/pas_ctl.
#pragma once

#include <string>
#include <utility>

namespace pas::ctl {

class Communicator {
 public:
  virtual ~Communicator() = default;

  /// Returns the full command-stream text (JSON, see task.hpp). Called once.
  [[nodiscard]] virtual std::string receive_tasks() = 0;

  /// Name of the stream's source for `origin:line:` diagnostics.
  [[nodiscard]] virtual std::string origin() const = 0;

  /// Publishes the serialized result log. Called once, after the run.
  virtual void publish_results(const std::string& log) = 0;
};

/// Scripted in-process transport: tasks from a string, results captured.
class VectorCommunicator final : public Communicator {
 public:
  explicit VectorCommunicator(std::string tasks_json, std::string origin = "<memory>")
      : tasks_(std::move(tasks_json)), origin_(std::move(origin)) {}

  [[nodiscard]] std::string receive_tasks() override { return tasks_; }
  [[nodiscard]] std::string origin() const override { return origin_; }
  void publish_results(const std::string& log) override { published_ = log; }

  [[nodiscard]] const std::string& published() const { return published_; }

 private:
  std::string tasks_;
  std::string origin_;
  std::string published_;
};

/// File/pipe transport: reads `task_path` to EOF (blocking on a FIFO until
/// the writer closes it), publishes to `result_path` ("" = stdout). Throws
/// std::runtime_error if the task file cannot be read.
class FileCommunicator final : public Communicator {
 public:
  FileCommunicator(std::string task_path, std::string result_path);

  [[nodiscard]] std::string receive_tasks() override;
  [[nodiscard]] std::string origin() const override { return task_path_; }
  void publish_results(const std::string& log) override;

 private:
  std::string task_path_;
  std::string result_path_;
};

}  // namespace pas::ctl
