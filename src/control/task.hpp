// The control plane's task protocol: externally-issued cluster commands.
//
// A command stream is a JSON array of task objects, one per line by
// convention (the parser does not require it, but diagnostics and diffs are
// line-oriented):
//
//     [
//     {"id": 1, "at_s": 10.000000, "task": "migrate", "vm": 3, "host": 1},
//     {"id": 2, "at_s": 12.500000, "task": "crash_host", "host": 0, "restart": true},
//     {"id": 3, "at_s": 15.000000, "task": "set_link_bandwidth", "mb_per_s": 80.0},
//     {"id": 4, "at_s": 20.000000, "task": "stop_vm", "vm": 2},
//     {"id": 5, "at_s": 25.000000, "task": "start_vm", "vm": 2, "host": 1},
//     {"id": 6, "at_s": 30.000000, "task": "restart_vm", "vm": 4, "host": 0},
//     {"id": 7, "at_s": 35.000000, "task": "annotate", "note": "shift change"}
//     ]
//
// The shape follows RWTH-OS/migration-framework's JSON protocol (start vm /
// stop vm / migrate vm with results published back), ported broker-free:
// timestamps are *sim-time* seconds, and delivery is the in-process
// ControlPlane instead of MQTT.
//
// parse_tasks is strict in the common::CsvTable hardening idiom: every
// malformed input — truncated JSON, unknown task kind, missing or negative
// timestamp, non-monotone times, out-of-range VM/host id, duplicate task
// id, unknown field — throws std::runtime_error with an `origin:line:`
// prefix. Nothing is skipped silently: a command log that parses is a
// command log that will be executed, and one that doesn't names the line.
//
// Execution results (TaskResult) serialize deterministically via
// serialize_results: fixed field order, %.6f timestamps (exact at SimTime's
// microsecond resolution), one result per line. results_to_annotations
// re-expresses a result log as a stream of `annotate` tasks — a no-op
// command stream that can be re-injected into a fresh run; because annotate
// results pass their note through verbatim, annotation streams are a fixed
// point of record→re-inject and the control replay test closes the loop
// byte-exactly (the PR 5 trace contract, extended to control traffic).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace pas::ctl {

enum class TaskKind : std::uint8_t {
  kStartVm = 0,          // resume a stopped VM on a host
  kStopVm,               // administratively stop a running VM (workload held)
  kMigrate,              // live-migrate a running VM
  kCrashHost,            // fail a host (what-if / drill traffic)
  kRestartVm,            // place an orphaned VM (external recovery decision)
  kSetLinkBandwidth,     // change the migration link's bandwidth
  kAnnotate,             // no-op marker; carried through to the result log
};

[[nodiscard]] const char* to_string(TaskKind kind);

/// One accepted external command, timestamped in sim-time.
struct Task {
  std::uint64_t id = 0;        // unique per stream
  common::SimTime at{};        // sim-time the command fires
  TaskKind kind = TaskKind::kAnnotate;
  std::uint32_t vm = 0;        // start_vm / stop_vm / migrate / restart_vm
  std::uint32_t host = 0;      // start_vm / migrate / crash_host / restart_vm
  bool restart = true;         // crash_host: hold residents for recovery
  double mb_per_s = 0.0;       // set_link_bandwidth
  std::string note;            // annotate
};

/// Fleet shape for range-checking vm/host ids at parse time. 0 = unknown
/// (skip the check — the ControlPlane still rejects bad ids at fire time).
struct FleetDims {
  std::size_t hosts = 0;
  std::size_t vms = 0;
};

/// Parses a command stream. Throws std::runtime_error with an
/// `origin:line:` prefix on any malformed input (see file header).
[[nodiscard]] std::vector<Task> parse_tasks(std::string_view text,
                                            const std::string& origin,
                                            FleetDims dims = {});

enum class TaskStatus : std::uint8_t {
  kOk = 0,
  /// The command was invalid against cluster state or policy at fire time
  /// (VM in flight, no migration budget, brownout, already resident, ...).
  kRejected,
  /// The command's target no longer exists in the required state — a crash
  /// got there first (dead host, orphaned or lost VM).
  kSuperseded,
};

[[nodiscard]] const char* to_string(TaskStatus status);

/// Outcome of one fired task, published back through the Communicator.
struct TaskResult {
  std::uint64_t id = 0;
  common::SimTime at{};
  TaskKind kind = TaskKind::kAnnotate;
  TaskStatus status = TaskStatus::kOk;
  std::string reason;  // empty for kOk
  std::string note;    // annotate pass-through
};

/// Deterministic result-log serialization: JSON array, one result per line,
/// fixed field order (id, at_s, task, status[, reason][, note]), %.6f
/// timestamps. Byte-identical across fast/slow paths and thread counts
/// whenever the underlying run is.
[[nodiscard]] std::string serialize_results(const std::vector<TaskResult>& results);

/// Re-expresses a result log as a parseable stream of no-op `annotate`
/// tasks: annotate results keep their note verbatim; every other result
/// becomes note = "<kind>:<status>[:<reason>]". Injecting the stream into a
/// fresh run perturbs nothing, and re-recording it reproduces the stream
/// byte-exactly (the fixed-point property the replay test pins).
[[nodiscard]] std::string results_to_annotations(const std::vector<TaskResult>& results);

}  // namespace pas::ctl
