#include "control/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace pas::ctl::json {

// Namespace-scope (not anonymous) so Value's `friend class Parser` matches.
class Parser {
 public:
  Parser(std::string_view text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value run() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(line_, "trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(std::size_t line, const std::string& what) const {
    throw std::runtime_error(origin_ + ":" + std::to_string(line) + ": " + what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char take() {
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        take();
      } else {
        break;
      }
    }
  }

  void expect(char want, const char* in_what) {
    if (eof()) fail(line_, std::string("unexpected end of input in ") + in_what);
    char c = take();
    if (c != want) {
      fail(line_, std::string("expected '") + want + "' in " + in_what + ", got '" +
                      printable(c) + "'");
    }
  }

  static std::string printable(char c) {
    if (std::isprint(static_cast<unsigned char>(c)) != 0) return std::string(1, c);
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned char>(c));
    return buf;
  }

  Value parse_value() {
    if (eof()) fail(line_, "unexpected end of input, expected a value");
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(line_, std::string("unexpected character '") + printable(c) +
                        "', expected a value");
    }
  }

  Value parse_object() {
    Value v;
    v.kind_ = Kind::kObject;
    v.line_ = line_;
    expect('{', "object");
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return v;
    }
    while (true) {
      skip_ws();
      if (eof()) fail(line_, "unexpected end of input in object");
      if (peek() != '"') fail(line_, "expected '\"' to start object key");
      std::size_t key_line = line_;
      std::string key = parse_string_body();
      for (const auto& [existing, unused] : v.members_) {
        (void)unused;
        if (existing == key) fail(key_line, "duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "object");
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail(line_, "unexpected end of input in object");
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        fail(line_, std::string("expected ',' or '}' in object, got '") +
                        printable(c) + "'");
      }
      skip_ws();
      if (!eof() && peek() == '}') fail(line_, "trailing comma in object");
    }
    return v;
  }

  Value parse_array() {
    Value v;
    v.kind_ = Kind::kArray;
    v.line_ = line_;
    expect('[', "array");
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return v;
    }
    while (true) {
      skip_ws();
      v.items_.push_back(parse_value());
      skip_ws();
      if (eof()) fail(line_, "unexpected end of input in array");
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        fail(line_, std::string("expected ',' or ']' in array, got '") +
                        printable(c) + "'");
      }
      skip_ws();
      if (!eof() && peek() == ']') fail(line_, "trailing comma in array");
    }
    return v;
  }

  Value parse_string_value() {
    Value v;
    v.kind_ = Kind::kString;
    v.line_ = line_;
    v.string_ = parse_string_body();
    return v;
  }

  // Consumes a quoted string including both quotes; returns the decoded body.
  std::string parse_string_body() {
    expect('"', "string");
    std::string out;
    while (true) {
      if (eof()) fail(line_, "unterminated string");
      char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(line_, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail(line_, "unterminated escape in string");
      char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail(line_, "truncated \\u escape in string");
            char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(line_, std::string("invalid hex digit '") + printable(h) +
                              "' in \\u escape");
            }
          }
          // UTF-8 encode the code point. Surrogates are rejected: the task
          // protocol is ASCII in practice and the result log must round-trip
          // byte-exactly, so no lossy pairing logic.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail(line_, "surrogate \\u escape not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail(line_, std::string("invalid escape '\\") + printable(e) + "' in string");
      }
    }
    return out;
  }

  Value parse_bool() {
    Value v;
    v.kind_ = Kind::kBool;
    v.line_ = line_;
    if (text_.substr(pos_, 4) == "true") {
      v.bool_ = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.bool_ = false;
      pos_ += 5;
    } else {
      fail(line_, "invalid literal, expected 'true' or 'false'");
    }
    return v;
  }

  Value parse_null() {
    Value v;
    v.kind_ = Kind::kNull;
    v.line_ = line_;
    if (text_.substr(pos_, 4) != "null") fail(line_, "invalid literal, expected 'null'");
    pos_ += 4;
    return v;
  }

  Value parse_number() {
    Value v;
    v.kind_ = Kind::kNumber;
    v.line_ = line_;
    std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    if (eof() || !(peek() >= '0' && peek() <= '9')) {
      fail(line_, "invalid number: expected digit");
    }
    while (!eof() && peek() >= '0' && peek() <= '9') take();
    if (!eof() && peek() == '.') {
      take();
      if (eof() || !(peek() >= '0' && peek() <= '9')) {
        fail(line_, "invalid number: expected digit after '.'");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      if (eof() || !(peek() >= '0' && peek() <= '9')) {
        fail(line_, "invalid number: expected digit in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    std::string_view token = text_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v.number_);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(line_, "invalid number \"" + std::string(token) + "\"");
    }
    return v;
  }

  std::string_view text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Value parse(std::string_view text, const std::string& origin) {
  return Parser(text, origin).run();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace pas::ctl::json
