#include "control/control_plane.hpp"

#include <utility>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "sim/event_queue.hpp"

namespace pas::ctl {

ControlPlane::ControlPlane(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

ControlPlane::ControlPlane(std::unique_ptr<Communicator> comm, FleetDims dims)
    : comm_(std::move(comm)) {
  tasks_ = parse_tasks(comm_->receive_tasks(), comm_->origin(), dims);
}

void ControlPlane::arm(cluster::Cluster& cluster, sim::EventQueue& events) {
  cluster_ = &cluster;
  events_ = &events;
  for (const Task& task : tasks_) {
    events.schedule(task.at, [this, &task](common::SimTime now) { apply(task, now); });
  }
}

bool ControlPlane::submit(const Task& task) {
  if (events_ == nullptr) return false;
  // Late tasks fire at the next event boundary; the queue clamps past
  // times forward, which keeps the (time, seq) position well defined.
  submitted_.push_back(std::make_unique<Task>(task));
  const Task* stored = submitted_.back().get();
  events_->schedule(task.at, [this, stored](common::SimTime now) { apply(*stored, now); });
  return true;
}

void ControlPlane::publish() {
  if (comm_) comm_->publish_results(result_log());
}

std::size_t ControlPlane::count(TaskStatus status) const {
  std::size_t n = 0;
  for (const TaskResult& r : results_)
    if (r.status == status) ++n;
  return n;
}

void ControlPlane::apply(const Task& task, common::SimTime now) {
  using cluster::VmState;
  TaskResult result;
  result.id = task.id;
  result.at = now;
  result.kind = task.kind;
  result.status = TaskStatus::kOk;

  const auto reject = [&](std::string reason) {
    result.status = TaskStatus::kRejected;
    result.reason = std::move(reason);
  };
  const auto supersede = [&](std::string reason) {
    result.status = TaskStatus::kSuperseded;
    result.reason = std::move(reason);
  };
  const auto vm_tag = [&] { return "vm " + std::to_string(task.vm); };
  const auto host_tag = [&] { return "host " + std::to_string(task.host); };

  switch (task.kind) {
    case TaskKind::kMigrate: {
      const VmState state = cluster_->vm_state(task.vm);
      if (state == VmState::kLost) {
        supersede(vm_tag() + " lost");
      } else if (state == VmState::kOrphaned) {
        supersede(vm_tag() + " orphaned by a crash");
      } else if (state == VmState::kStopped) {
        reject(vm_tag() + " is stopped");
      } else if (cluster_->crashed(task.host)) {
        supersede(host_tag() + " crashed");
      } else if (cluster_->residence(task.vm) == task.host) {
        reject(vm_tag() + " already resident on " + host_tag());
      } else if (cluster_->migrating(task.vm)) {
        reject(vm_tag() + " already in flight");
      } else {
        // External migrations obey the same policy as planner-issued ones:
        // browned-out periods issue nothing, and the per-tick budget is
        // shared — an operator cannot out-migrate the reshuffle bound.
        cluster::ClusterManager* mgr = cluster_->manager();
        using Admission = cluster::ClusterManager::ExternalAdmission;
        const Admission admission =
            mgr ? mgr->admit_external_migration(now) : Admission::kAdmitted;
        if (admission == Admission::kBrownout) {
          reject("planner brownout");
        } else if (admission == Admission::kNoBudget) {
          reject("migration budget exhausted");
        } else if (!cluster_->migrate(task.vm, task.host)) {
          reject("migration refused");  // unreachable given the checks above
        }
      }
      break;
    }
    case TaskKind::kStopVm: {
      const VmState state = cluster_->vm_state(task.vm);
      if (state == VmState::kLost) {
        supersede(vm_tag() + " lost");
      } else if (state == VmState::kOrphaned) {
        supersede(vm_tag() + " orphaned by a crash");
      } else if (state == VmState::kStopped) {
        reject(vm_tag() + " already stopped");
      } else if (cluster_->migrating(task.vm)) {
        reject(vm_tag() + " in flight");
      } else if (!cluster_->stop_vm(task.vm)) {
        reject("stop refused");  // unreachable given the checks above
      }
      break;
    }
    case TaskKind::kStartVm: {
      const VmState state = cluster_->vm_state(task.vm);
      if (state == VmState::kLost) {
        supersede(vm_tag() + " lost");
      } else if (state == VmState::kOrphaned) {
        supersede(vm_tag() + " orphaned by a crash");
      } else if (state == VmState::kRunning) {
        reject(vm_tag() + " already running");
      } else if (cluster_->crashed(task.host)) {
        supersede(host_tag() + " crashed");
      } else if (!cluster_->start_vm(task.vm, task.host)) {
        reject("start refused");  // unreachable given the checks above
      }
      break;
    }
    case TaskKind::kCrashHost: {
      if (cluster_->crashed(task.host)) {
        supersede(host_tag() + " already crashed");
      } else if (!cluster_->crash_host(task.host, task.restart)) {
        reject(host_tag() + " is the last live host");
      }
      break;
    }
    case TaskKind::kRestartVm: {
      const VmState state = cluster_->vm_state(task.vm);
      if (state == VmState::kLost) {
        supersede(vm_tag() + " lost");
      } else if (state != VmState::kOrphaned) {
        reject(vm_tag() + " not orphaned");
      } else if (cluster_->crashed(task.host)) {
        supersede(host_tag() + " crashed");
      } else if (!cluster_->restart_vm(task.vm, task.host)) {
        reject("restart refused");  // unreachable given the checks above
      }
      break;
    }
    case TaskKind::kSetLinkBandwidth:
      cluster_->set_link_bandwidth(task.mb_per_s);
      break;
    case TaskKind::kAnnotate:
      result.note = task.note;
      break;
  }

  results_.push_back(std::move(result));
}

}  // namespace pas::ctl
