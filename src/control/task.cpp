#include "control/task.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "control/json.hpp"

namespace pas::ctl {
namespace {

[[noreturn]] void fail(const std::string& origin, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + what);
}

/// Non-negative integer field (id / vm / host). JSON numbers are doubles;
/// anything fractional, negative, or too large to round-trip exactly is
/// malformed input, not something to truncate quietly.
std::uint64_t require_uint(const json::Value& v, const std::string& origin,
                           const char* field) {
  if (!v.is_number()) {
    fail(origin, v.line(), std::string("field \"") + field + "\" must be a number");
  }
  double d = v.as_number();
  if (d < 0.0) {
    fail(origin, v.line(), std::string("field \"") + field + "\" must be non-negative");
  }
  if (d != std::floor(d) || d > 9.007199254740992e15) {  // 2^53
    fail(origin, v.line(), std::string("field \"") + field + "\" must be an integer");
  }
  return static_cast<std::uint64_t>(d);
}

struct KindSpec {
  const char* name;
  TaskKind kind;
  bool vm, host, mb_per_s;  // required fields beyond id/at_s/task
};

constexpr KindSpec kKinds[] = {
    {"start_vm", TaskKind::kStartVm, true, true, false},
    {"stop_vm", TaskKind::kStopVm, true, false, false},
    {"migrate", TaskKind::kMigrate, true, true, false},
    {"crash_host", TaskKind::kCrashHost, false, true, false},
    {"restart_vm", TaskKind::kRestartVm, true, true, false},
    {"set_link_bandwidth", TaskKind::kSetLinkBandwidth, false, false, true},
    {"annotate", TaskKind::kAnnotate, false, false, false},
};

}  // namespace

const char* to_string(TaskKind kind) {
  for (const KindSpec& spec : kKinds) {
    if (spec.kind == kind) return spec.name;
  }
  return "?";
}

const char* to_string(TaskStatus status) {
  switch (status) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kRejected: return "rejected";
    case TaskStatus::kSuperseded: return "superseded";
  }
  return "?";
}

std::vector<Task> parse_tasks(std::string_view text, const std::string& origin,
                              FleetDims dims) {
  json::Value root = json::parse(text, origin);
  if (!root.is_array()) {
    fail(origin, root.line(), "top-level value must be an array of tasks");
  }

  std::vector<Task> tasks;
  tasks.reserve(root.items().size());
  std::set<std::uint64_t> seen_ids;

  for (const json::Value& item : root.items()) {
    if (!item.is_object()) {
      fail(origin, item.line(), "task must be an object");
    }
    Task task;

    // --- id ---
    const json::Value* id = item.find("id");
    if (id == nullptr) fail(origin, item.line(), "missing required field \"id\"");
    task.id = require_uint(*id, origin, "id");
    if (!seen_ids.insert(task.id).second) {
      fail(origin, id->line(),
           "duplicate task id " + std::to_string(task.id));
    }

    // --- at_s ---
    const json::Value* at = item.find("at_s");
    if (at == nullptr) fail(origin, item.line(), "missing required field \"at_s\"");
    if (!at->is_number()) fail(origin, at->line(), "field \"at_s\" must be a number");
    double at_s = at->as_number();
    if (at_s < 0.0) {
      fail(origin, at->line(), "field \"at_s\" must be non-negative");
    }
    task.at = common::SimTime{std::llround(at_s * 1e6)};
    if (!tasks.empty() && task.at < tasks.back().at) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "non-monotone at_s: %.6f is earlier than the previous task's %.6f",
                    task.at.sec(), tasks.back().at.sec());
      fail(origin, at->line(), buf);
    }

    // --- task kind ---
    const json::Value* kind = item.find("task");
    if (kind == nullptr) fail(origin, item.line(), "missing required field \"task\"");
    if (!kind->is_string()) {
      fail(origin, kind->line(), "field \"task\" must be a string");
    }
    const KindSpec* spec = nullptr;
    for (const KindSpec& candidate : kKinds) {
      if (kind->as_string() == candidate.name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      fail(origin, kind->line(), "unknown task kind \"" + kind->as_string() + "\"");
    }
    task.kind = spec->kind;

    // --- kind-specific fields ---
    if (spec->vm) {
      const json::Value* vm = item.find("vm");
      if (vm == nullptr) fail(origin, item.line(), "missing required field \"vm\"");
      std::uint64_t v = require_uint(*vm, origin, "vm");
      if (dims.vms != 0 && v >= dims.vms) {
        fail(origin, vm->line(),
             "unknown vm " + std::to_string(v) + " (fleet has " +
                 std::to_string(dims.vms) + " VMs)");
      }
      task.vm = static_cast<std::uint32_t>(v);
    }
    if (spec->host) {
      const json::Value* host = item.find("host");
      if (host == nullptr) fail(origin, item.line(), "missing required field \"host\"");
      std::uint64_t h = require_uint(*host, origin, "host");
      if (dims.hosts != 0 && h >= dims.hosts) {
        fail(origin, host->line(),
             "unknown host " + std::to_string(h) + " (fleet has " +
                 std::to_string(dims.hosts) + " hosts)");
      }
      task.host = static_cast<std::uint32_t>(h);
    }
    if (spec->mb_per_s) {
      const json::Value* bw = item.find("mb_per_s");
      if (bw == nullptr) {
        fail(origin, item.line(), "missing required field \"mb_per_s\"");
      }
      if (!bw->is_number() || !(bw->as_number() > 0.0)) {
        fail(origin, bw->line(), "field \"mb_per_s\" must be a positive number");
      }
      task.mb_per_s = bw->as_number();
    }
    if (task.kind == TaskKind::kCrashHost) {
      if (const json::Value* restart = item.find("restart")) {
        if (!restart->is_bool()) {
          fail(origin, restart->line(), "field \"restart\" must be a boolean");
        }
        task.restart = restart->as_bool();
      }
    }
    if (task.kind == TaskKind::kAnnotate) {
      if (const json::Value* note = item.find("note")) {
        if (!note->is_string()) {
          fail(origin, note->line(), "field \"note\" must be a string");
        }
        task.note = note->as_string();
      }
    }

    // --- reject unknown / misplaced fields ---
    for (const auto& [name, value] : item.members()) {
      bool known = name == "id" || name == "at_s" || name == "task" ||
                   (spec->vm && name == "vm") || (spec->host && name == "host") ||
                   (spec->mb_per_s && name == "mb_per_s") ||
                   (task.kind == TaskKind::kCrashHost && name == "restart") ||
                   (task.kind == TaskKind::kAnnotate && name == "note");
      if (!known) {
        fail(origin, value.line(),
             "unknown field \"" + name + "\" for task kind \"" + spec->name + "\"");
      }
    }

    tasks.push_back(std::move(task));
  }
  return tasks;
}

namespace {

void append_result_line(std::string& out, const TaskResult& result) {
  char buf[64];
  out += "{\"id\": ";
  out += std::to_string(result.id);
  std::snprintf(buf, sizeof(buf), ", \"at_s\": %.6f", result.at.sec());
  out += buf;
  out += ", \"task\": \"";
  out += to_string(result.kind);
  out += "\", \"status\": \"";
  out += to_string(result.status);
  out += "\"";
  if (!result.reason.empty()) {
    out += ", \"reason\": \"" + json::escape(result.reason) + "\"";
  }
  if (!result.note.empty()) {
    out += ", \"note\": \"" + json::escape(result.note) + "\"";
  }
  out += "}";
}

}  // namespace

std::string serialize_results(const std::vector<TaskResult>& results) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_result_line(out, results[i]);
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string results_to_annotations(const std::vector<TaskResult>& results) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TaskResult& result = results[i];
    std::string note;
    if (result.kind == TaskKind::kAnnotate) {
      note = result.note;  // verbatim: the fixed-point property
    } else {
      note = std::string(to_string(result.kind)) + ":" + to_string(result.status);
      if (!result.reason.empty()) note += ":" + result.reason;
    }
    char buf[64];
    out += "{\"id\": ";
    out += std::to_string(result.id);
    std::snprintf(buf, sizeof(buf), ", \"at_s\": %.6f", result.at.sec());
    out += buf;
    out += ", \"task\": \"annotate\", \"note\": \"" + json::escape(note) + "\"}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace pas::ctl
